"""Common machinery for private L1 data caches.

Each protocol subclass declares its taxonomy (Table I of the paper) as class
attributes and implements the five architectural operations the cores issue:
``load``, ``store``, ``amo``, ``invalidate_all`` (the ``cache_invalidate``
instruction) and ``flush_all`` (the ``cache_flush`` instruction), plus the
two L2-facing snoop hooks used by the directory.

Every operation returns its latency in cycles; loads/AMOs also return the
value.  Write-backs triggered by evictions are posted (traffic is recorded,
the requester is not stalled), matching write-buffer behaviour.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

from repro.engine.stats import StatGroup
from repro.mem.address import line_addr, word_index
from repro.mem.cacheline import CacheLine, TagArray
from repro.trace.tracer import NULL_TRACER


class L1Cache:
    """Abstract private L1 data cache."""

    #: Event tracer (repro.trace); replaced per-machine when tracing is on.
    tracer = NULL_TRACER

    #: Fault-injection hook (repro.faults); the machine sets it on its
    #: instances when a plan with forced evictions is active.
    fault_injector = None

    #: Table I taxonomy, overridden per protocol.
    PROTOCOL = "base"
    INVALIDATION = "none"  # "writer" | "reader"
    DIRTY_PROPAGATION = "none"  # "owner-wb" | "noowner-wt" | "noowner-wb"
    WRITE_GRANULARITY = "line"  # "line" | "word"
    #: Tracked caches appear in the L2 sharer list (writer-initiated inval).
    TRACKED = False
    #: Whether AMOs must be performed at the shared L2.
    AMO_AT_L2 = False
    #: Whether cache_flush / cache_invalidate are real operations.
    NEEDS_FLUSH = False
    NEEDS_INVALIDATE = False
    #: Whether a lock release must be an AMO to become globally visible
    #: (true only for no-owner write-back protocols, i.e. GPU-WB).
    LOCK_RELEASE_AMO = False

    #: Fixed cost of a flash invalidate/flush scan trigger.
    FLASH_OP_LATENCY = 4

    #: Store/miss buffer entries: stores retire into a small buffer and the
    #: core stalls only when it is full (all modeled cores have one).
    WRITE_BUFFER_ENTRIES = 8

    def __init__(
        self,
        core_id: int,
        l2,
        stats: StatGroup,
        size_bytes: int,
        assoc: int = 2,
        hit_latency: int = 1,
    ):
        self.core_id = core_id
        self.l2 = l2
        self.hit_latency = hit_latency
        self.tags = TagArray(size_bytes, assoc)
        self.stats = stats.child(f"l1d_{core_id}")
        self.stats.set("size_bytes", size_bytes)
        # Hot-path counters: the raw (in-place mutated) counter dict of the
        # stat group, indexed with literal keys by the protocol hit paths —
        # one dict add per access instead of string formatting + attribute
        # chains (see repro.engine.stats.Counter for the handle variant).
        self._cnt = self.stats._counters
        self._store_buffer: "deque[int]" = deque()
        l2.register_l1(core_id, self)

    # ------------------------------------------------------------------
    # Architectural operations (implemented by subclasses)
    # ------------------------------------------------------------------
    def load(self, addr: int, now: int) -> Tuple[int, int]:
        raise NotImplementedError

    def store(self, addr: int, value: int, now: int) -> int:
        raise NotImplementedError

    def amo(self, op: str, addr: int, operand, now: int) -> Tuple[int, int]:
        raise NotImplementedError

    def invalidate_all(self, now: int) -> int:
        """``cache_invalidate``: drop potentially-stale clean data."""
        return 0  # no-op by default (MESI)

    def flush_all(self, now: int) -> int:
        """``cache_flush``: make dirty data globally visible."""
        return 0  # no-op by default (MESI, DeNovo, GPU-WT)

    # ------------------------------------------------------------------
    # L2-facing snoops
    # ------------------------------------------------------------------
    def snoop_invalidate(self, base: int) -> None:
        """Writer-initiated invalidation from the directory."""
        if self.tags.remove(line_addr(base)) is not None:
            self.stats.add("snoop_invalidations")

    def snoop_recall(self, base: int) -> Tuple[Optional[List[int]], int, bool]:
        """Directory recall of an owned line.

        Returns (words, dirty_mask, kept) — ``kept`` says whether a clean
        copy stays resident (downgrade) or the line was dropped.
        """
        return None, 0, False

    def snoop_peek_word(self, base: int, idx: int) -> Optional[int]:
        """Non-demoting directory snoop of a single word.

        Returns the word's current value when this cache holds it dirty
        (fresher than the L2), else None.  No state transition: used by
        ``SharedL2.read_word_bypass`` so mailbox polling cannot strip
        ownership.
        """
        line = self.tags.peek(line_addr(base))
        if line is not None and line.word_dirty(idx):
            return line.data[idx]
        return None

    # ------------------------------------------------------------------
    # Line insertion / eviction
    # ------------------------------------------------------------------
    def _insert(self, line: CacheLine, now: int) -> None:
        """Insert a filled line, evicting through the protocol victim path."""
        victim = self.tags.insert(line)
        if victim is not None:
            self.stats.add("evictions")
            self._evict_victim(victim, now)
        fi = self.fault_injector
        if fi is not None and fi.l1_evict_fires(self.core_id):
            self.force_capacity_eviction(now, exclude=line.addr)

    def _evict_victim(self, victim: CacheLine, now: int) -> None:
        """Protocol-specific victim handling (writeback/notice/silent drop)."""
        raise NotImplementedError

    def force_capacity_eviction(self, now: int, exclude: Optional[int] = None) -> bool:
        """Evict one resident line through the normal victim path.

        Used by fault injection to model external cache pressure.  The
        line named by ``exclude`` (typically one just inserted, which the
        caller is still mutating) is never chosen.  Returns whether a
        victim existed.
        """
        candidates = [ln for ln in self.tags.lines() if ln.addr != exclude]
        if not candidates:
            return False
        if self.fault_injector is not None:
            victim = self.fault_injector.l1_pick_victim(self.core_id, candidates)
        else:
            victim = candidates[0]
        self.tags.remove(victim.addr)
        self.stats.add("evictions")
        self.stats.add("forced_evictions")
        self._evict_victim(victim, now)
        return True

    # ------------------------------------------------------------------
    # Store buffer
    # ------------------------------------------------------------------
    def _buffered_store_latency(self, now: int, miss_latency: int) -> int:
        """Charge a store miss through the store buffer.

        The miss's coherence actions were already applied (state updates are
        synchronous); the core is charged only the buffer-full stall, as in
        real in-order cores with a store/miss buffer.
        """
        buffer = self._store_buffer
        while buffer and buffer[0] <= now:
            buffer.popleft()
        stall = 0
        if len(buffer) >= self.WRITE_BUFFER_ENTRIES:
            stall = max(0, buffer.popleft() - now)
            self.stats.add("store_buffer_stall_cycles", stall)
        buffer.append(now + stall + miss_latency)
        return self.hit_latency + stall

    def _drain_store_buffer(self, now: int) -> int:
        """Fence: stall until all buffered stores have completed."""
        buffer = self._store_buffer
        if not buffer:
            return 0
        last = buffer[-1]
        buffer.clear()
        return max(0, last - now)

    # ------------------------------------------------------------------
    # Checkpoint support (repro.engine.checkpoint)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Every per-run mutable field except stats (captured with the
        machine's StatGroup tree).  Protocols with extra buffers override
        both methods and extend the dict."""
        return {
            "tags": self.tags.export_state(),
            "store_buffer": list(self._store_buffer),
        }

    def load_state(self, state: dict) -> None:
        self.tags.load_state(state["tags"])
        self._store_buffer = deque(state["store_buffer"])

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _trace_burst(self, kind: str, now: int, lines: int, latency: int) -> None:
        """Record an invalidate/flush burst event (no-op when untraced)."""
        if self.tracer.enabled:
            self.tracer.mem_burst(self.core_id, now, kind, lines, latency)

    #: kind -> (access key, hit key), computed once instead of building an
    #: f-string + ``rstrip`` on every cached access.
    _ACCESS_KEYS = {
        "loads": ("loads", "load_hits"),
        "stores": ("stores", "store_hits"),
        "amos": ("amos", "amo_hits"),
    }

    def _record_access(self, kind: str, hit: bool) -> None:
        keys = self._ACCESS_KEYS.get(kind)
        if keys is None:
            keys = (kind, f"{kind.rstrip('s')}_hits")
        self.stats.add(keys[0])
        if hit:
            self.stats.add(keys[1])

    def hit_rate(self) -> float:
        """L1-D hit rate over loads + stores (Figure 6 of the paper)."""
        accesses = self.stats.get("loads") + self.stats.get("stores")
        if accesses == 0:
            return 1.0
        hits = self.stats.get("load_hits") + self.stats.get("store_hits")
        return hits / accesses

    def _word(self, addr: int) -> int:
        return word_index(addr)

    def resident(self, addr: int) -> Optional[CacheLine]:
        return self.tags.peek(line_addr(addr))
