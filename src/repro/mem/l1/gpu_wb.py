"""GPU-WB software-centric coherent L1: write-back with per-word dirty bits.

Reader-initiated invalidation, no ownership, word-granularity write-back
(Table I).  Stores write-allocate *without fetching* (only the written word
becomes valid+dirty), so write temporal locality is exploited; the cost is
that ``cache_flush`` is a real operation — every dirty word must be written
back to the shared L2 before other threads can see it, and the paper's
Figure 8 shows the resulting wb_req traffic that Direct Task Stealing then
eliminates.  AMOs execute at the shared L2.

``cache_invalidate`` invalidates *clean* data only: dirty words this core
wrote cannot be stale and must survive until the next flush.
"""

from __future__ import annotations

from typing import Tuple

from repro.mem.address import LINE_MASK, WORD_INDEX_MASK, WORD_SHIFT, line_addr
from repro.mem.amo import apply_amo
from repro.mem.cacheline import CacheLine, FULL_MASK, VALID
from repro.mem.l1.base import L1Cache


class GpuWbL1(L1Cache):
    PROTOCOL = "gpu-wb"
    INVALIDATION = "reader"
    DIRTY_PROPAGATION = "noowner-wb"
    WRITE_GRANULARITY = "word"
    TRACKED = False
    AMO_AT_L2 = True
    NEEDS_FLUSH = True
    NEEDS_INVALIDATE = True
    LOCK_RELEASE_AMO = True

    #: Per-line cost of a flush (serialization through the L1 port and the
    #: NoC injection link; calibrated against the paper's HCC-gwb vs MESI
    #: gap at our scaled inputs).
    FLUSH_PER_LINE_CYCLES = 6

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def load(self, addr: int, now: int) -> Tuple[int, int]:
        base = addr & LINE_MASK
        idx = (addr >> WORD_SHIFT) & WORD_INDEX_MASK
        line = self.tags.lookup(base)
        if line is not None and line.valid_mask & (1 << idx):
            cnt = self._cnt
            cnt["loads"] += 1
            cnt["load_hits"] += 1
            return line.data[idx], self.hit_latency
        self._cnt["loads"] += 1
        data, latency, _excl = self.l2.fetch_shared(
            self.core_id, addr, now + self.hit_latency, track_sharer=False
        )
        if line is not None:
            # Merge the fill under the dirty mask: our writes win.
            for i in range(len(data)):
                if not line.word_dirty(i):
                    line.data[i] = data[i]
            line.valid_mask = FULL_MASK
        else:
            line = CacheLine(base, VALID, data)
            self._insert(line, now)
        return line.data[idx], self.hit_latency + latency

    def store(self, addr: int, value: int, now: int) -> int:
        base = addr & LINE_MASK
        line = self.tags.lookup(base)
        if line is not None:
            cnt = self._cnt
            cnt["stores"] += 1
            cnt["store_hits"] += 1
            line.set_word((addr >> WORD_SHIFT) & WORD_INDEX_MASK, value, dirty=True)
            return self.hit_latency
        # Write-allocate without fetch: only the stored word is valid.
        self._cnt["stores"] += 1
        line = CacheLine(base, VALID)
        line.valid_mask = 0
        line.set_word(self._word(addr), value, dirty=True)
        self._insert(line, now)
        return self.hit_latency

    def amo(self, op: str, addr: int, operand, now: int) -> Tuple[int, int]:
        """AMOs execute at the shared L2 (no ownership in private caches).

        A dirty local copy of the target word must be flushed first so the
        L2 sees this core's latest value (fence-before-atomic).
        """
        self._cnt["amos"] += 1
        base = line_addr(addr)
        idx = self._word(addr)
        extra = 0
        line = self.tags.peek(base)
        if line is not None and line.word_dirty(idx):
            extra = self.l2.writeback_line(
                self.core_id, base, line.data, 1 << idx, now, release_ownership=False
            )
            line.dirty_mask &= ~(1 << idx)
        old, latency = self.l2.amo_word(self.core_id, addr, op, operand, now + extra)
        if line is not None:
            new, _ = apply_amo(op, old, operand)
            line.set_word(idx, new, dirty=False)
        return old, extra + latency

    # ------------------------------------------------------------------
    # Software coherence operations
    # ------------------------------------------------------------------
    def invalidate_all(self, now: int) -> int:
        """Invalidate clean words everywhere; dirty words survive."""
        self.stats.add("invalidate_ops")
        dropped = 0
        for line in self.tags.lines():
            if line.dirty_mask == 0:
                self.tags.remove(line.addr)
                dropped += 1
            elif line.valid_mask != line.dirty_mask:
                line.valid_mask = line.dirty_mask
                dropped += 1
        self.stats.add("lines_invalidated", dropped)
        self._trace_burst("invalidate", now, dropped, self.FLASH_OP_LATENCY)
        return self.FLASH_OP_LATENCY

    def flush_all(self, now: int) -> int:
        """Write every dirty word back to the shared L2 (pipelined)."""
        self.stats.add("flush_ops")
        flushed = 0
        worst_injection = 0
        for line in self.tags.lines():
            if line.dirty_mask == 0:
                continue
            injection = self.l2.writeback_line(
                self.core_id, line.addr, line.data, line.dirty_mask,
                now, release_ownership=False,
            )
            worst_injection = max(worst_injection, injection)
            line.dirty_mask = 0
            flushed += 1
        self.stats.add("lines_flushed", flushed)
        latency = (
            self.FLASH_OP_LATENCY + worst_injection
            + self.FLUSH_PER_LINE_CYCLES * flushed
        )
        self._trace_burst("flush", now, flushed, latency)
        return latency

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _evict_victim(self, victim: CacheLine, now: int) -> None:
        if victim.dirty_mask:
            self.l2.writeback_line(
                self.core_id, victim.addr, victim.data, victim.dirty_mask,
                now, release_ownership=False,
            )
