"""DeNovo (DeNovoSync variant) software-centric coherent L1.

Reader-initiated stale invalidation + ownership ("registration") dirty
propagation (Table I).  Reads of valid lines may return stale data unless
software has issued ``cache_invalidate``; writes and AMOs register the line
at the L2 directory and are then performed locally, so dirty data is
propagated on demand by ownership recall and ``cache_flush`` is a no-op.

Line states: V (valid, clean, possibly stale) and R (registered = owned,
may be dirty).  ``cache_invalidate`` drops V lines but keeps R lines — data
this core itself wrote cannot be stale (the DeNovo self-invalidation rule).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.mem.address import LINE_MASK, WORD_INDEX_MASK, WORD_SHIFT, line_addr
from repro.mem.amo import apply_amo
from repro.mem.cacheline import CacheLine, REGISTERED, VALID
from repro.mem.l1.base import L1Cache


class DeNovoL1(L1Cache):
    PROTOCOL = "denovo"
    INVALIDATION = "reader"
    DIRTY_PROPAGATION = "owner-wb"
    WRITE_GRANULARITY = "word/line"
    TRACKED = False
    AMO_AT_L2 = False
    NEEDS_FLUSH = False
    NEEDS_INVALIDATE = True

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def load(self, addr: int, now: int) -> Tuple[int, int]:
        line = self.tags.lookup(addr & LINE_MASK)
        if line is not None:
            cnt = self._cnt
            cnt["loads"] += 1
            cnt["load_hits"] += 1
            return line.data[(addr >> WORD_SHIFT) & WORD_INDEX_MASK], self.hit_latency
        self._cnt["loads"] += 1
        data, latency, _excl = self.l2.fetch_shared(
            self.core_id, addr, now + self.hit_latency, track_sharer=False
        )
        self._insert(CacheLine(line_addr(addr), VALID, data), now)
        return data[self._word(addr)], self.hit_latency + latency

    def store(self, addr: int, value: int, now: int) -> int:
        base = addr & LINE_MASK
        line = self.tags.lookup(base)
        if line is not None and line.state == REGISTERED:
            cnt = self._cnt
            cnt["stores"] += 1
            cnt["store_hits"] += 1
            line.set_word((addr >> WORD_SHIFT) & WORD_INDEX_MASK, value, dirty=True)
            return self.hit_latency
        self._cnt["stores"] += 1
        latency = self._register(line, base, addr, now)
        line = self.tags.peek(base)
        line.set_word(self._word(addr), value, dirty=True)
        return self._buffered_store_latency(now, latency)

    def amo(self, op: str, addr: int, operand, now: int) -> Tuple[int, int]:
        """Registered RMW in the private cache (DeNovoSync-style).

        AMOs are fences: they drain the store buffer first.
        """
        self._cnt["amos"] += 1
        drain = self._drain_store_buffer(now)
        now += drain
        base = line_addr(addr)
        line = self.tags.lookup(base)
        if line is not None and line.state == REGISTERED:
            latency = self.hit_latency
        else:
            latency = self.hit_latency + self._register(line, base, addr, now)
            line = self.tags.peek(base)
        idx = self._word(addr)
        new, old = apply_amo(op, line.data[idx], operand)
        line.set_word(idx, new, dirty=True)
        return old, drain + latency

    def _register(self, line: Optional[CacheLine], base: int, addr: int, now: int) -> int:
        """Obtain registration (ownership) for a store/AMO miss.

        Registration always fetches the current data: DeNovoSync registers
        synchronization words whose latest value may live at the L2 or in
        another core's registered copy.
        """
        data, latency = self.l2.fetch_exclusive(self.core_id, addr, now)
        if line is not None:
            line.state = REGISTERED
            line.data = list(data)
            line.dirty_mask = 0
        else:
            self._insert(CacheLine(base, REGISTERED, data), now)
        return latency

    # ------------------------------------------------------------------
    # Software coherence operations
    # ------------------------------------------------------------------
    def invalidate_all(self, now: int) -> int:
        """Drop every valid-but-unowned line (reader-initiated invalidation)."""
        self.stats.add("invalidate_ops")
        dropped = 0
        for line in self.tags.lines():
            if line.state == VALID:
                self.tags.remove(line.addr)
                dropped += 1
        self.stats.add("lines_invalidated", dropped)
        self._trace_burst("invalidate", now, dropped, self.FLASH_OP_LATENCY)
        return self.FLASH_OP_LATENCY

    # flush_all inherited: no-op (ownership propagates dirty data).

    # ------------------------------------------------------------------
    # Snoops / eviction
    # ------------------------------------------------------------------
    def snoop_recall(self, base: int) -> Tuple[Optional[List[int]], int, bool]:
        line = self.tags.peek(line_addr(base))
        if line is None:
            return None, 0, False
        dirty = line.dirty_mask
        words = list(line.data) if dirty else None
        line.state = VALID  # lose registration, keep a clean copy
        line.dirty_mask = 0
        self.stats.add("recalls")
        return words, dirty, True

    def _evict_victim(self, victim: CacheLine, now: int) -> None:
        if victim.state == REGISTERED:
            self.l2.writeback_line(
                self.core_id, victim.addr, victim.data,
                victim.dirty_mask, now, release_ownership=True,
            )
        # V evictions are silent: DeNovo caches are untracked.
