"""Backing main memory (DRAM contents).

Stores line-granular data: a dict from line base address to a list of 8
word values.  Unwritten memory reads as zero, like freshly-zeroed pages.
Values are whatever the program stores (the simulator convention is plain
Python ints); the memory system never interprets them.
"""

from __future__ import annotations

from typing import Dict, List

from repro.mem.address import LINE_BYTES, WORDS_PER_LINE, line_addr, word_index


class MainMemory:
    """Word-addressable, line-organized backing store."""

    def __init__(self):
        self._lines: Dict[int, List[int]] = {}

    def read_line(self, addr: int) -> List[int]:
        """Return a *copy* of the 8-word line containing ``addr``."""
        base = line_addr(addr)
        stored = self._lines.get(base)
        if stored is None:
            return [0] * WORDS_PER_LINE
        return list(stored)

    def write_line(self, addr: int, words: List[int]) -> None:
        """Replace the full line containing ``addr``."""
        if len(words) != WORDS_PER_LINE:
            raise ValueError(f"line write needs {WORDS_PER_LINE} words")
        self._lines[line_addr(addr)] = list(words)

    def write_words(self, addr: int, words: List[int], mask: int) -> None:
        """Merge ``words`` into the line under a per-word bitmask."""
        base = line_addr(addr)
        stored = self._lines.setdefault(base, [0] * WORDS_PER_LINE)
        for i in range(WORDS_PER_LINE):
            if mask & (1 << i):
                stored[i] = words[i]

    def read_word(self, addr: int) -> int:
        base = line_addr(addr)
        stored = self._lines.get(base)
        if stored is None:
            return 0
        return stored[word_index(addr)]

    def write_word(self, addr: int, value: int) -> None:
        base = line_addr(addr)
        stored = self._lines.setdefault(base, [0] * WORDS_PER_LINE)
        stored[word_index(addr)] = value

    @property
    def footprint_bytes(self) -> int:
        return len(self._lines) * LINE_BYTES

    # Checkpoint support (repro.engine.checkpoint).
    def export_state(self) -> Dict[int, List[int]]:
        return {base: list(words) for base, words in self._lines.items()}

    def load_state(self, state: Dict[int, List[int]]) -> None:
        self._lines = {base: list(words) for base, words in state.items()}
