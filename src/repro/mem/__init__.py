"""Simulated memory system: address space, caches, directory L2, DRAM."""

from repro.mem.address import (
    LINE_BYTES,
    WORD_BYTES,
    WORDS_PER_LINE,
    AddressSpace,
    Region,
    line_addr,
    word_addr,
    word_index,
)
from repro.mem.amo import AMO_OPS, apply_amo
from repro.mem.backing import MainMemory
from repro.mem.cacheline import CacheLine, TagArray
from repro.mem.dram import DramController
from repro.mem.l1 import PROTOCOLS, DeNovoL1, GpuWbL1, GpuWtL1, L1Cache, MesiL1
from repro.mem.l2 import SharedL2
from repro.mem.traffic import CATEGORIES, TrafficMeter

__all__ = [
    "AddressSpace",
    "Region",
    "MainMemory",
    "CacheLine",
    "TagArray",
    "DramController",
    "SharedL2",
    "TrafficMeter",
    "CATEGORIES",
    "L1Cache",
    "MesiL1",
    "DeNovoL1",
    "GpuWtL1",
    "GpuWbL1",
    "PROTOCOLS",
    "AMO_OPS",
    "apply_amo",
    "LINE_BYTES",
    "WORD_BYTES",
    "WORDS_PER_LINE",
    "line_addr",
    "word_addr",
    "word_index",
]
