"""Shared banked L2 cache with an embedded heterogeneous directory.

This is the HCC integration point, modeled after Spandex [Alsop et al.,
ISCA'18] as the paper describes: the L2 accepts request types from all four
L1 protocols (MESI GetS/GetM/PutM, DeNovo registrations and ownership
write-backs, GPU write-throughs, word flushes, and AMOs performed at the
shared cache) and keeps per-line directory state:

* ``sharers`` — the set of MESI L1s holding the line (precise sharer list,
  writer-initiated invalidation on any write by anyone else);
* ``owner``   — the single L1 (MESI M/E or DeNovo Registered) holding the
  up-to-date dirty/exclusive copy, recalled on demand.

GPU-WT/GPU-WB L1s are never tracked: they self-invalidate (reader-initiated)
and propagate dirty data with write-throughs/flushes, which is exactly what
makes them cheap.

The L2 is inclusive of tracked (MESI/DeNovo-owned) lines: evicting such an
L2 line first recalls/invalidates the L1 copies.

Latency accounting: each operation computes its end-to-end latency
analytically — requester->bank mesh hops, bank queue delay (busy-until
model), L2 tag/data access, optional DRAM fetch through the bank's memory
controller, optional owner recall / sharer invalidation round trips, and the
response hops back.  Traffic is recorded per the paper's Figure 8 message
categories.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.engine.stats import StatGroup
from repro.mem.address import LINE_BYTES, WORDS_PER_LINE, line_addr, word_index
from repro.mem.amo import apply_amo
from repro.mem.backing import MainMemory
from repro.mem.cacheline import CacheLine, TagArray, VALID
from repro.mem.dram import DramController
from repro.mem.traffic import (
    AMO_BYTES,
    CTRL_BYTES,
    LINE_DATA_BYTES,
    WORD_DATA_BYTES,
    TrafficMeter,
)
from repro.noc.mesh import Mesh


class _Bank:
    """One L2 bank: a busy-until FIFO server plus its tag array."""

    def __init__(self, bank_id: int, size_bytes: int, assoc: int):
        self.bank_id = bank_id
        self.tags = TagArray(size_bytes, assoc)
        self.busy_until = 0

    def queue_delay(self, arrival: int, service_time: int) -> int:
        start = max(arrival, self.busy_until)
        self.busy_until = start + service_time
        return start - arrival


class SharedL2:
    """Shared, banked, directory-embedded L2 supporting HCC."""

    def __init__(
        self,
        mesh: Mesh,
        memory: MainMemory,
        traffic: TrafficMeter,
        stats: StatGroup,
        n_banks: int,
        bank_size_bytes: int,
        assoc: int = 8,
        tag_latency: int = 6,
        service_time: int = 2,
        dram_controllers: Optional[List[DramController]] = None,
    ):
        self.mesh = mesh
        self.memory = memory
        self.traffic = traffic
        self.stats = stats.child("l2")
        self.n_banks = n_banks
        self.tag_latency = tag_latency
        self.service_time = service_time
        self.banks = [_Bank(b, bank_size_bytes, assoc) for b in range(n_banks)]
        if dram_controllers is None:
            dram_controllers = [DramController(b, stats) for b in range(n_banks)]
        if len(dram_controllers) != n_banks:
            raise ValueError("need one DRAM controller per L2 bank")
        self.dram = dram_controllers
        self._l1s: Dict[int, "object"] = {}
        self._bank_pos = [mesh.bank_position(b, n_banks) for b in range(n_banks)]

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register_l1(self, core_id: int, l1) -> None:
        self._l1s[core_id] = l1

    # ------------------------------------------------------------------
    # Checkpoint support (repro.engine.checkpoint)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Per-bank tag arrays (directory state travels inside the packed
        lines as ``sharers``/``owner``) and busy-until queue clocks."""
        return {
            "banks": [
                {"tags": bank.tags.export_state(), "busy_until": bank.busy_until}
                for bank in self.banks
            ],
        }

    def load_state(self, state: dict) -> None:
        for bank, bank_state in zip(self.banks, state["banks"]):
            bank.tags.load_state(bank_state["tags"])
            bank.busy_until = bank_state["busy_until"]

    def _core_pos(self, core_id: int):
        return self.mesh.core_position(core_id)

    def bank_of(self, address: int) -> int:
        return (line_addr(address) // LINE_BYTES) % self.n_banks

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------
    def _ensure_line(self, bank: _Bank, base: int, now: int) -> Tuple[CacheLine, int]:
        """Make ``base`` resident in ``bank``; return (entry, extra_latency)."""
        entry = bank.tags.lookup(base)
        if entry is not None:
            return entry, 0
        # L2 miss: fetch from DRAM through this bank's controller.
        self.stats.add("misses")
        dram = self.dram[bank.bank_id % len(self.dram)]
        latency = dram.access(now, LINE_DATA_BYTES)
        self.traffic.record("dram_req", CTRL_BYTES, 1)
        self.traffic.record("dram_resp", LINE_DATA_BYTES, 1)
        entry = CacheLine(base, VALID, self.memory.read_line(base))
        victim = bank.tags.insert(entry)
        if victim is not None:
            latency += self._evict_l2_line(bank, victim, now + latency)
        return entry, latency

    def _evict_l2_line(self, bank: _Bank, victim: CacheLine, now: int) -> int:
        """Evict an L2 line: recall/invalidate L1 copies, write back dirty data."""
        latency = 0
        self.stats.add("evictions")
        if victim.owner is not None:
            latency += self._recall_owner(bank, victim, now)
        if victim.sharers:
            latency += self._invalidate_sharers(bank, victim, now, except_core=None)
        if victim.dirty_mask:
            self.memory.write_words(victim.addr, victim.data, victim.dirty_mask)
            dram = self.dram[bank.bank_id % len(self.dram)]
            latency += dram.access(now + latency, LINE_DATA_BYTES)
            self.traffic.record("dram_req", LINE_DATA_BYTES, 1)
        # Clean victims are dropped: their words match DRAM by construction
        # (every L2 data mutation sets dirty_mask; repro.verify proves the
        # invariant), so writing them back would be untracked DRAM traffic.
        return latency

    def _recall_owner(self, bank: _Bank, entry: CacheLine, now: int) -> int:
        """Pull the up-to-date copy from the owning L1 and merge it."""
        owner = entry.owner
        if owner is None:
            return 0
        l1 = self._l1s[owner]
        words, mask, kept = l1.snoop_recall(entry.addr)
        if mask:
            for i in range(WORDS_PER_LINE):
                if mask & (1 << i):
                    entry.data[i] = words[i]
            entry.dirty_mask |= mask
        entry.owner = None
        if kept and l1.TRACKED:
            # MESI owner downgraded to S: it stays on the sharer list.
            entry.sharers.add(owner)
        hops = self.mesh.hops(self._bank_pos[bank.bank_id], self._core_pos(owner))
        round_trip = 2 * hops * (
            self.mesh.config.router_latency + self.mesh.config.channel_latency
        ) + 1
        self.traffic.record("coh_req", CTRL_BYTES, hops)
        self.traffic.record("coh_resp", LINE_DATA_BYTES if mask else CTRL_BYTES, hops)
        self.stats.add("owner_recalls")
        return round_trip

    def _invalidate_sharers(
        self, bank: _Bank, entry: CacheLine, now: int, except_core: Optional[int]
    ) -> int:
        """Writer-initiated invalidation of all MESI sharers (parallel)."""
        worst = 0
        bank_pos = self._bank_pos[bank.bank_id]
        for sharer in sorted(entry.sharers):
            if sharer == except_core:
                continue
            self._l1s[sharer].snoop_invalidate(entry.addr)
            hops = self.mesh.hops(bank_pos, self._core_pos(sharer))
            round_trip = 2 * hops * (
                self.mesh.config.router_latency + self.mesh.config.channel_latency
            ) + 1
            worst = max(worst, round_trip)
            self.traffic.record("coh_req", CTRL_BYTES, hops)
            self.traffic.record("coh_resp", CTRL_BYTES, hops)
            self.stats.add("sharer_invalidations")
        entry.sharers = {except_core} if except_core in entry.sharers else set()
        return worst

    def _request_overhead(
        self, core_id: int, bank: _Bank, now: int, req_bytes: int, req_cat: str
    ) -> int:
        """Requester->bank hops + queue + tag access; records request traffic."""
        core_pos = self._core_pos(core_id)
        bank_pos = self._bank_pos[bank.bank_id]
        hops = self.mesh.hops(core_pos, bank_pos)
        req_latency = self.mesh.latency(core_pos, bank_pos, req_bytes)
        self.traffic.record(req_cat, req_bytes, hops)
        queue = bank.queue_delay(now + req_latency, self.service_time)
        self.stats.add("accesses")
        return req_latency + queue + self.tag_latency

    def _response_latency(self, core_id: int, bank: _Bank, resp_bytes: int, resp_cat: str) -> int:
        core_pos = self._core_pos(core_id)
        bank_pos = self._bank_pos[bank.bank_id]
        hops = self.mesh.hops(bank_pos, core_pos)
        self.traffic.record(resp_cat, resp_bytes, hops)
        return self.mesh.latency(bank_pos, core_pos, resp_bytes)

    # ------------------------------------------------------------------
    # Requests from L1 caches
    # ------------------------------------------------------------------
    def fetch_shared(
        self, core_id: int, address: int, now: int, track_sharer: bool
    ) -> Tuple[List[int], int, bool]:
        """Read a line (MESI GetS when ``track_sharer``; DeNovo/GPU load fill).

        Returns (line data copy, latency, exclusive) where ``exclusive`` is
        True when no other cache holds the line (MESI E-state grant).
        """
        base = line_addr(address)
        bank = self.banks[self.bank_of(base)]
        latency = self._request_overhead(core_id, bank, now, CTRL_BYTES, "cpu_req")
        entry, miss_latency = self._ensure_line(bank, base, now + latency)
        latency += miss_latency
        if entry.owner is not None and entry.owner != core_id:
            latency += self._recall_owner(bank, entry, now + latency)
        exclusive = False
        if track_sharer:
            others = entry.sharers - {core_id}
            if not others and entry.owner is None:
                # Grant E: the requester becomes the (clean) owner.
                entry.owner = core_id
                entry.sharers = set()
                exclusive = True
            else:
                if entry.owner == core_id:
                    entry.owner = None
                entry.sharers.add(core_id)
        latency += self._response_latency(core_id, bank, LINE_DATA_BYTES, "data_resp")
        return list(entry.data), latency, exclusive

    def fetch_exclusive(self, core_id: int, address: int, now: int) -> Tuple[List[int], int]:
        """Obtain an exclusive/owned copy (MESI GetM, DeNovo registration)."""
        base = line_addr(address)
        bank = self.banks[self.bank_of(base)]
        latency = self._request_overhead(core_id, bank, now, CTRL_BYTES, "cpu_req")
        entry, miss_latency = self._ensure_line(bank, base, now + latency)
        latency += miss_latency
        if entry.owner is not None and entry.owner != core_id:
            latency += self._recall_owner(bank, entry, now + latency)
        latency += self._invalidate_sharers(bank, entry, now + latency, except_core=None)
        entry.owner = core_id
        entry.sharers = set()
        latency += self._response_latency(core_id, bank, LINE_DATA_BYTES, "data_resp")
        return list(entry.data), latency

    def upgrade(self, core_id: int, address: int, now: int) -> int:
        """MESI S->M upgrade: invalidate the other sharers, grant ownership."""
        base = line_addr(address)
        bank = self.banks[self.bank_of(base)]
        latency = self._request_overhead(core_id, bank, now, CTRL_BYTES, "cpu_req")
        entry, miss_latency = self._ensure_line(bank, base, now + latency)
        latency += miss_latency
        if entry.owner is not None and entry.owner != core_id:
            latency += self._recall_owner(bank, entry, now + latency)
        latency += self._invalidate_sharers(bank, entry, now + latency, except_core=core_id)
        entry.sharers.discard(core_id)
        entry.owner = core_id
        latency += self._response_latency(core_id, bank, CTRL_BYTES, "data_resp")
        return latency

    def writeback_line(
        self,
        core_id: int,
        address: int,
        words: List[int],
        mask: int,
        now: int,
        release_ownership: bool,
    ) -> int:
        """Accept dirty data from an L1 (eviction PutM, DeNovo flush, GPU-WB flush).

        Write-backs are posted (buffered) — the returned latency is the
        injection cost only, not a full round trip; the requester decides
        what to charge.
        """
        base = line_addr(address)
        bank = self.banks[self.bank_of(base)]
        core_pos = self._core_pos(core_id)
        bank_pos = self._bank_pos[bank.bank_id]
        hops = self.mesh.hops(core_pos, bank_pos)
        n_words = bin(mask).count("1")
        n_bytes = CTRL_BYTES + n_words * 8
        self.traffic.record("wb_req", n_bytes, hops)
        bank.queue_delay(now, self.service_time)
        entry, _ = self._ensure_line(bank, base, now)
        # A write-back from one cache invalidates hardware-coherent copies
        # elsewhere (Spandex: foreign dirty data breaks SWMR for MESI L1s).
        if entry.owner is not None and entry.owner != core_id:
            self._recall_owner(bank, entry, now)
        self._invalidate_sharers(bank, entry, now, except_core=core_id)
        for i in range(WORDS_PER_LINE):
            if mask & (1 << i):
                entry.data[i] = words[i]
        entry.dirty_mask |= mask
        if release_ownership and entry.owner == core_id:
            entry.owner = None
        self.stats.add("writebacks")
        return self.mesh.latency(core_pos, bank_pos, n_bytes)

    def eviction_notice(self, core_id: int, address: int) -> None:
        """Silent clean eviction from a tracked L1 (keeps directory precise)."""
        base = line_addr(address)
        bank = self.banks[self.bank_of(base)]
        entry = bank.tags.peek(base)
        if entry is None:
            return
        entry.sharers.discard(core_id)
        if entry.owner == core_id:
            entry.owner = None
        hops = self.mesh.hops(self._core_pos(core_id), self._bank_pos[bank.bank_id])
        self.traffic.record("coh_resp", CTRL_BYTES, hops)

    def write_through_word(self, core_id: int, address: int, value: int, now: int) -> int:
        """GPU-WT store: update the shared cache directly (no L1 allocation)."""
        base = line_addr(address)
        bank = self.banks[self.bank_of(base)]
        core_pos = self._core_pos(core_id)
        bank_pos = self._bank_pos[bank.bank_id]
        hops = self.mesh.hops(core_pos, bank_pos)
        self.traffic.record("wb_req", WORD_DATA_BYTES, hops)
        latency = self.mesh.latency(core_pos, bank_pos, WORD_DATA_BYTES)
        latency += bank.queue_delay(now + latency, self.service_time) + self.tag_latency
        entry, miss_latency = self._ensure_line(bank, base, now + latency)
        latency += miss_latency
        if entry.owner is not None and entry.owner != core_id:
            latency += self._recall_owner(bank, entry, now + latency)
        latency += self._invalidate_sharers(bank, entry, now + latency, except_core=None)
        idx = word_index(address)
        entry.data[idx] = value
        entry.dirty_mask |= 1 << idx
        self.stats.add("write_throughs")
        return latency

    def amo_word(self, core_id: int, address: int, op: str, operand, now: int) -> Tuple[int, int]:
        """AMO performed at the shared cache (GPU-WT / GPU-WB protocols)."""
        base = line_addr(address)
        bank = self.banks[self.bank_of(base)]
        latency = self._request_overhead(core_id, bank, now, AMO_BYTES, "sync_req")
        entry, miss_latency = self._ensure_line(bank, base, now + latency)
        latency += miss_latency
        if entry.owner is not None and entry.owner != core_id:
            latency += self._recall_owner(bank, entry, now + latency)
        latency += self._invalidate_sharers(bank, entry, now + latency, except_core=None)
        idx = word_index(address)
        new, old = apply_amo(op, entry.data[idx], operand)
        entry.data[idx] = new
        entry.dirty_mask |= 1 << idx
        latency += self._response_latency(core_id, bank, AMO_BYTES, "sync_resp")
        self.stats.add("amos")
        return old, latency

    def read_word_bypass(self, core_id: int, address: int, now: int) -> Tuple[int, int]:
        """Uncached word read at the L2 (ULI mailbox reads, monitor loads).

        A bypass read is a *read*: it must observe the owner's latest value
        but must not strip MESI/DeNovo ownership (mailbox polling would
        otherwise demote the owner on every read and churn the directory).
        The owner is snooped for the one word without any state change —
        even when the owner is the requesting core itself (its own dirty
        copy is the architectural value; the L2's may be stale).
        """
        base = line_addr(address)
        bank = self.banks[self.bank_of(base)]
        latency = self._request_overhead(core_id, bank, now, CTRL_BYTES, "sync_req")
        entry, miss_latency = self._ensure_line(bank, base, now + latency)
        latency += miss_latency
        idx = word_index(address)
        value = entry.data[idx]
        if entry.owner is not None:
            peeked, peek_latency = self._peek_owner_word(bank, entry, idx)
            latency += peek_latency
            if peeked is not None:
                value = peeked
        latency += self._response_latency(core_id, bank, WORD_DATA_BYTES, "sync_resp")
        return value, latency

    def _peek_owner_word(self, bank: _Bank, entry: CacheLine, idx: int) -> Tuple[Optional[int], int]:
        """Snoop one word from the owning L1 without demoting it.

        Returns (value or None, round-trip latency); None means the owner's
        copy of that word is clean, so the L2's own data is current.
        """
        owner = entry.owner
        l1 = self._l1s[owner]
        value = l1.snoop_peek_word(entry.addr, idx)
        hops = self.mesh.hops(self._bank_pos[bank.bank_id], self._core_pos(owner))
        round_trip = 2 * hops * (
            self.mesh.config.router_latency + self.mesh.config.channel_latency
        ) + 1
        self.traffic.record("coh_req", CTRL_BYTES, hops)
        self.traffic.record(
            "coh_resp", WORD_DATA_BYTES if value is not None else CTRL_BYTES, hops
        )
        self.stats.add("owner_peeks")
        return value, round_trip

    # ------------------------------------------------------------------
    # Introspection (tests / debugging)
    # ------------------------------------------------------------------
    def peek_word(self, address: int) -> int:
        """Current L2/DRAM value of a word, ignoring L1 copies (tests only)."""
        base = line_addr(address)
        entry = self.banks[self.bank_of(base)].tags.peek(base)
        if entry is not None:
            return entry.data[word_index(address)]
        return self.memory.read_word(address)

    def directory_entry(self, address: int) -> Optional[CacheLine]:
        base = line_addr(address)
        return self.banks[self.bank_of(base)].tags.peek(base)
