"""`repro verify` — run the exhaustive checker over protocol mixes.

Exit code 0 means every requested (mix, scenario) pair was exhausted
with zero violations; an incomplete exploration (``--max-states`` hit)
is a *failure*, never silently reported as clean.  With
``--expect-violations`` the verdict inverts: the run must find at least
one counterexample (the positive-control mode CI uses to prove the
checker actually catches injected coherence bugs).
"""

from __future__ import annotations

import json
import os
import sys
from typing import List, Optional

from repro.verify.counterexample import export_counterexample_trace
from repro.verify.explore import BREAK_MODES, MixResult, explore
from repro.verify.model import MIXES


def _resolve_mixes(spec: str) -> List[str]:
    if spec == "all":
        return list(MIXES)
    mixes = spec.split(",")
    unknown = [m for m in mixes if m not in MIXES]
    if unknown:
        raise ValueError(
            f"unknown mix(es): {', '.join(unknown)}; "
            f"pick from {', '.join(MIXES)}"
        )
    return mixes


def _artifact_stem(result: MixResult) -> str:
    stem = f"{result.mix}-{result.scenario}"
    if result.break_coherence:
        stem += f"-{result.break_coherence}"
    return stem


def _write_artifacts(result: MixResult, out_dir: str) -> List[str]:
    os.makedirs(out_dir, exist_ok=True)
    cx = result.counterexample
    stem = os.path.join(out_dir, _artifact_stem(result))
    cx_path = f"{stem}.cx.json"
    with open(cx_path, "w", encoding="utf-8") as fh:
        json.dump(cx.to_json(), fh, indent=1, sort_keys=True)
    trace_path = f"{stem}.trace.json"
    export_counterexample_trace(cx, trace_path)
    return [cx_path, trace_path]


def run_verify(
    mixes: str = "all",
    cores: int = 2,
    words: int = 1,
    ops: str = "all",
    scenario: str = "all",
    break_coherence: Optional[str] = None,
    expect_violations: bool = False,
    max_states: int = 500_000,
    out: Optional[str] = None,
) -> int:
    """Run the checker; print one summary line per (mix, scenario)."""
    try:
        mix_list = _resolve_mixes(mixes)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if break_coherence is not None:
        if break_coherence not in BREAK_MODES:
            print(f"error: unknown --break-coherence {break_coherence!r}",
                  file=sys.stderr)
            return 2
        if scenario == "free":
            print("error: --break-coherence requires the handoff scenario",
                  file=sys.stderr)
            return 2
        scenario = "handoff"
    if scenario == "all":
        scenarios = ["free", "handoff"]
    elif scenario in ("free", "handoff"):
        scenarios = [scenario]
    else:
        print(f"error: unknown scenario {scenario!r}", file=sys.stderr)
        return 2

    results: List[MixResult] = []
    for mix in mix_list:
        for scen in scenarios:
            result = explore(
                mix, cores=cores, words=words, ops=ops, scenario=scen,
                break_coherence=break_coherence if scen == "handoff" else None,
                max_states=max_states,
            )
            results.append(result)
            print(result.summary())
            if result.counterexample is not None:
                cx = result.counterexample
                primary = cx.violations[0]
                print(f"  {primary['message']}")
                for i, label in enumerate(cx.to_json()["step_labels"]):
                    print(f"    step {i}: {label}")
                if out:
                    for path in _write_artifacts(result, out):
                        print(f"  artifact: {path}", file=sys.stderr)

    incomplete = [r for r in results if not r.complete]
    found = [r for r in results if r.counterexample is not None]
    total_states = sum(r.states for r in results)
    total_transitions = sum(r.transitions for r in results)
    print(f"total: {len(results)} explorations, {total_states} states, "
          f"{total_transitions} transitions")
    if incomplete:
        print(f"FAIL: {len(incomplete)} exploration(s) hit --max-states "
              f"({max_states}); nothing proven", file=sys.stderr)
        return 1
    if expect_violations:
        if not found:
            print("FAIL: expected violations, found none", file=sys.stderr)
            return 1
        print(f"positive control: {len(found)} counterexample(s) found")
        return 0
    if found:
        print(f"FAIL: {len(found)} violation(s)", file=sys.stderr)
        return 1
    print("all invariants hold over the full reachable state space")
    return 0
