"""Micro-machine and operation semantics for the model checker.

The machine under test is the *real* memory system: ``PROTOCOLS`` L1
instances wired to a real ``SharedL2`` over a real ``Mesh`` — no
re-modeled abstraction.  It is shrunk to the smallest configuration that
still exercises every transition: one 64B line, one L2 bank, and
direct-mapped 1-line L1s, so the only events are the protocol transitions
themselves.

**Ghost memory.**  Data-value coherence is checked against a ghost
last-writer memory tracking, per word:

* ``published[w]`` — the value of the last *globally visible* write: any
  MESI/DeNovo store or AMO (ownership makes them visible on demand via
  recall), any GPU-WT write-through, any AMO at the L2, and any GPU-WB
  dirty word at the moment it is flushed or written back.
* ``last_write[w]`` (handoff scenario only) — the last value written by
  anyone through any path, visible or not.

The value rules per protocol follow from the Table I taxonomy:

* MESI loads always return ``published`` exactly: every publish event
  recalls the owner or invalidates MESI sharers, so a resident MESI copy
  postdates the last publish.
* DeNovo Registered reads and all misses return ``published`` exactly
  (misses recall the owner at the L2).
* DeNovo Valid / GPU clean hits may legally return stale data — but only
  values that were actually written some time in the past (membership in
  the closed value domain), never merge garbage.
* A GPU-WB dirty hit returns this core's own pending word (trivially the
  line's data — checked implicitly), and AMOs observe ``published``
  exactly after the GPU-WB fence-before-atomic flush.

**Timing normalization.**  Monotone timing state (bank/DRAM busy-until,
store/write buffers, LRU ticks) never influences a transition *decision*
in this 1-line machine, only latencies; it is reset after every operation
so BFS states canonicalize.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.stats import StatGroup
from repro.mem.address import WORD_BYTES, WORDS_PER_LINE
from repro.mem.backing import MainMemory
from repro.mem.cacheline import REGISTERED
from repro.mem.dram import DramController
from repro.mem.l1 import PROTOCOLS
from repro.mem.l2 import SharedL2
from repro.mem.traffic import TrafficMeter
from repro.noc.mesh import Mesh, MeshConfig
from repro.verify.invariants import (
    check_l2_clean_words_match_memory,
    check_swmr_walk,
)

#: The one line under test.
LINE_BASE = 0x1000

#: Protocol mixes: the four homogeneous protocols plus every
#: heterogeneous big.TINY pairing (MESI big core + software-centric
#: tiny cores), mirroring the repo's bt-hcc-* configurations.
MIXES = {
    "mesi": ("mesi",),
    "denovo": ("denovo",),
    "gpu-wt": ("gpu-wt",),
    "gpu-wb": ("gpu-wb",),
    "hcc-dnv": ("mesi", "denovo"),
    "hcc-gwt": ("mesi", "gpu-wt"),
    "hcc-gwb": ("mesi", "gpu-wb"),
}

#: Free-mode operation names (the ``--ops`` alphabet).
OP_NAMES = (
    "load", "store", "amo", "flush", "invalidate",
    "l1evict", "l2evict", "bypass",
)


def mix_protocols(mix: str, cores: int) -> Tuple[str, ...]:
    """Per-core protocol tuple for ``mix`` at ``cores`` cores.

    Homogeneous mixes replicate the protocol; heterogeneous mixes are one
    MESI big core plus ``cores - 1`` tiny cores.
    """
    kinds = MIXES[mix]
    if len(kinds) == 1:
        return kinds * cores
    return (kinds[0],) + (kinds[1],) * (cores - 1)


def store_value(core: int, word: int) -> int:
    """Closed, collision-free per-(core, word) store value domain."""
    return 10 * (core + 1) + (word + 1)


def amo_operand(core: int) -> int:
    return 100 + core


def value_domain(n_cores: int, words: int) -> frozenset:
    """Every value any operation can ever write (plus the zero fill)."""
    values = {0}
    for c in range(n_cores):
        values.add(amo_operand(c))
        for w in range(words):
            values.add(store_value(c, w))
    return frozenset(values)


class Ghost:
    """Ghost last-writer memory (see module docstring)."""

    __slots__ = ("published", "last_write")

    def __init__(self, published: Optional[Dict[int, int]] = None,
                 last_write: Optional[Dict[int, int]] = None):
        self.published: Dict[int, int] = dict(published or {})
        #: Only tracked in the handoff scenario (None in free mode).
        self.last_write = None if last_write is None else dict(last_write)

    def copy(self) -> "Ghost":
        return Ghost(self.published, self.last_write)

    def export(self) -> dict:
        return {
            "published": dict(self.published),
            "last_write": None if self.last_write is None
            else dict(self.last_write),
        }

    @classmethod
    def from_export(cls, state: dict) -> "Ghost":
        return cls(state["published"], state["last_write"])

    def wrote(self, word: int, value: int) -> None:
        if self.last_write is not None:
            self.last_write[word] = value


class MicroMachine:
    """1-line, 1-bank machine built from the real memory-system classes."""

    def __init__(self, protocols: Sequence[str], words: int = 2):
        if not 1 <= words <= WORDS_PER_LINE:
            raise ValueError(f"words must be 1..{WORDS_PER_LINE}")
        self.protocols = tuple(protocols)
        self.words = words
        n = len(self.protocols)
        self.stats = StatGroup("verify")
        self.memory = MainMemory()
        self.traffic = TrafficMeter()
        self.mesh = Mesh(MeshConfig(rows=1, cols=n))
        dram = [DramController(0, self.stats)]
        self.l2 = SharedL2(
            self.mesh, self.memory, self.traffic, self.stats,
            n_banks=1, bank_size_bytes=4096, assoc=1,
            dram_controllers=dram,
        )
        # Direct-mapped 64B L1s: exactly one resident line, so the only
        # eviction is the explicit l1evict operation.
        self.l1s = [
            PROTOCOLS[p](cid, self.l2, self.stats, size_bytes=64, assoc=1)
            for cid, p in enumerate(self.protocols)
        ]
        self.domain = value_domain(n, words)

    # ------------------------------------------------------------------
    def addr(self, word: int) -> int:
        return LINE_BASE + word * WORD_BYTES

    def normalize_timing(self) -> None:
        """Zero all monotone timing state (see module docstring)."""
        for l1 in self.l1s:
            l1._store_buffer.clear()
            wb = getattr(l1, "_write_buffer", None)
            if wb is not None:
                wb.clear()
            l1.tags._tick = 0
            for line in l1.tags.lines():
                line.lru = 0
        for bank in self.l2.banks:
            bank.busy_until = 0
            bank.tags._tick = 0
            for line in bank.tags.lines():
                line.lru = 0
        for dram in self.l2.dram:
            dram.busy_until = 0

    # ------------------------------------------------------------------
    # Snapshot / restore / canonicalization
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "l1": [l1.export_state() for l1 in self.l1s],
            "l2": self.l2.export_state(),
            "mem": self.memory.export_state(),
        }

    def restore(self, snap: dict) -> None:
        for l1, state in zip(self.l1s, snap["l1"]):
            l1.load_state(state)
        self.l2.load_state(snap["l2"])
        self.memory.load_state(snap["mem"])


def _freeze(value):
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def canonical_key(snap: dict, ghost_state: dict, pcs: Tuple[int, ...]):
    """Hashable canonical form of (machine snapshot, ghost, script PCs).

    Packed lines are sorted by address so dict insertion order (a replay
    artifact, not architectural state) cannot split states; timing fields
    were already zeroed by ``normalize_timing``.
    """
    l1s = tuple(
        tuple(sorted(_freeze(p) for p in st["tags"]["lines"]))
        for st in snap["l1"]
    )
    l2 = tuple(
        tuple(sorted(_freeze(p) for p in bank["tags"]["lines"]))
        for bank in snap["l2"]["banks"]
    )
    mem = tuple(sorted(
        (base, tuple(line)) for base, line in snap["mem"].items()
    ))
    last = ghost_state["last_write"]
    ghost = (
        tuple(sorted(ghost_state["published"].items())),
        None if last is None else tuple(sorted(last.items())),
    )
    return (l1s, l2, mem, ghost, pcs)


# ----------------------------------------------------------------------
# Operation application + per-operation value checking
# ----------------------------------------------------------------------
def op_label(op: Tuple) -> str:
    name = op[0]
    if name == "l2evict":
        return "l2evict"
    core = op[1]
    if name in ("load", "store", "bypass", "check"):
        return f"{name} c{core} w{op[2]}"
    if name == "amo":
        return f"amo c{core} w{op[2]}<-{op[3]}"
    return f"{name} c{core}"


def _publish_dirty_words(mm: MicroMachine, ghost: Ghost, core: int,
                         mask_filter: Optional[int] = None) -> None:
    """Record the GPU-WB dirty words of ``core`` as globally published.

    Called just before the operation that makes them visible (flush,
    dirty eviction, or the AMO fence on its own word).
    """
    l1 = mm.l1s[core]
    for line in l1.tags.lines():
        mask = line.dirty_mask
        if mask_filter is not None:
            mask = mask & mask_filter
        for i in range(WORDS_PER_LINE):
            if mask & (1 << i):
                ghost.published[i] = line.data[i]


def _check_load_value(mm: MicroMachine, ghost: Ghost, core: int, word: int,
                      got: int, expected) -> List[dict]:
    kind, want = expected
    if kind == "exact":
        if got != want:
            return [{
                "kind": "value-coherence",
                "message": f"core {core} ({mm.protocols[core]}) load of word "
                           f"{word} returned {got}, expected the published "
                           f"value {want}",
                "core": core, "word": word, "got": got, "expected": want,
            }]
    elif got not in mm.domain:
        return [{
            "kind": "corrupt-value",
            "message": f"core {core} ({mm.protocols[core]}) load of word "
                       f"{word} returned {got}, a value never written by "
                       "any operation",
            "core": core, "word": word, "got": got,
        }]
    return []


def _load_expectation(mm: MicroMachine, ghost: Ghost, core: int, word: int):
    """("exact", value) when the protocol guarantees the published value,
    ("stale", None) when legally-stale data is allowed (membership only)."""
    l1 = mm.l1s[core]
    proto = l1.PROTOCOL
    line = l1.resident(mm.addr(word))
    published = ghost.published.get(word, 0)
    if proto == "mesi":
        # Publish events recall/invalidate MESI copies, so hits are fresh;
        # misses fetch through the directory, which recalls the owner.
        return ("exact", published)
    if proto == "denovo":
        if line is not None and line.state == REGISTERED:
            return ("exact", published)
        if line is not None:
            return ("stale", None)  # V: possibly stale until invalidate
        return ("exact", published)
    if proto == "gpu-wt":
        if line is not None:
            return ("stale", None)
        return ("exact", published)
    # gpu-wb
    if line is not None and line.valid_mask & (1 << word):
        if line.dirty_mask & (1 << word):
            # Own pending write: the hit returns the line's word itself.
            return ("exact", line.data[word])
        return ("stale", None)
    return ("exact", published)  # miss / merge-fill under the dirty mask


def apply_op(mm: MicroMachine, ghost: Ghost, op: Tuple) -> List[dict]:
    """Apply one operation at ``now=0``, updating the ghost memory.

    Returns value-coherence violations observed *by the operation itself*
    (load/AMO/bypass result checks and the transition-level traffic
    conservation assertion); state invariants are checked separately via
    :func:`check_state_invariants`.
    """
    violations: List[dict] = []
    name = op[0]

    # Transition-level traffic conservation: any change to backing memory
    # must be accompanied by DRAM traffic, and dram_req messages must
    # match DRAM controller accesses one-for-one.
    mem_before = {b: tuple(w) for b, w in mm.memory._lines.items()}
    dram_req_before = mm.traffic.messages["dram_req"]
    accesses_before = sum(d.stats.get("accesses") for d in mm.l2.dram)

    if name == "load":
        _, core, word = op
        expected = _load_expectation(mm, ghost, core, word)
        got, _lat = mm.l1s[core].load(mm.addr(word), 0)
        violations += _check_load_value(mm, ghost, core, word, got, expected)
    elif name == "store":
        _, core, word, value = op
        l1 = mm.l1s[core]
        l1.store(mm.addr(word), value, 0)
        if not l1.NEEDS_FLUSH:
            ghost.published[word] = value
        ghost.wrote(word, value)
    elif name == "amo":
        _, core, word, operand = op
        l1 = mm.l1s[core]
        if l1.NEEDS_FLUSH:
            # GPU-WB fence-before-atomic publishes the word's own pending
            # write before the AMO reads it at the L2.
            _publish_dirty_words(mm, ghost, core, mask_filter=1 << word)
        expected_old = ghost.published.get(word, 0)
        old, _lat = l1.amo("xchg", mm.addr(word), operand, 0)
        if old != expected_old:
            violations.append({
                "kind": "amo-stale-old",
                "message": f"core {core} ({mm.protocols[core]}) AMO on word "
                           f"{word} observed {old}, expected the published "
                           f"value {expected_old}",
                "core": core, "word": word, "got": old,
                "expected": expected_old,
            })
        ghost.published[word] = operand
        ghost.wrote(word, operand)
    elif name == "flush":
        _, core = op
        _publish_dirty_words(mm, ghost, core)
        mm.l1s[core].flush_all(0)
    elif name == "invalidate":
        _, core = op
        mm.l1s[core].invalidate_all(0)
    elif name == "l1evict":
        _, core = op
        l1 = mm.l1s[core]
        if l1.NEEDS_FLUSH:
            # A dirty GPU-WB eviction writes its words back: published.
            _publish_dirty_words(mm, ghost, core)
        l1.force_capacity_eviction(0)
    elif name == "l2evict":
        bank = mm.l2.banks[0]
        victim = bank.tags.remove(LINE_BASE)
        if victim is not None:
            mm.l2._evict_l2_line(bank, victim, 0)
    elif name == "bypass":
        _, core, word = op
        published = ghost.published.get(word, 0)
        got, _lat = mm.l2.read_word_bypass(core, mm.addr(word), 0)
        if got != published:
            violations.append({
                "kind": "value-coherence",
                "message": f"core {core} bypass read of word {word} returned "
                           f"{got}, expected the published value {published}",
                "core": core, "word": word, "got": got, "expected": published,
            })
    elif name == "check":
        # Scenario-scripted load with a visibility guarantee: the DTS
        # discipline (flush / AMO handoff / invalidate) promises this core
        # sees the *last write*, not merely some published value.
        _, core, word = op
        expected = _load_expectation(mm, ghost, core, word)
        got, _lat = mm.l1s[core].load(mm.addr(word), 0)
        violations += _check_load_value(mm, ghost, core, word, got, expected)
        want = (ghost.last_write or {}).get(word, 0)
        if got != want:
            violations.append({
                "kind": "handoff-stale-read",
                "message": f"core {core} ({mm.protocols[core]}) reads {got} "
                           f"from word {word} after the handoff, but the "
                           f"last write was {want}",
                "core": core, "word": word, "got": got, "expected": want,
            })
    else:  # pragma: no cover - guarded by op construction
        raise ValueError(f"unknown op {op!r}")

    mem_after = {b: tuple(w) for b, w in mm.memory._lines.items()}
    dram_req_delta = mm.traffic.messages["dram_req"] - dram_req_before
    access_delta = sum(d.stats.get("accesses") for d in mm.l2.dram) - accesses_before
    if mem_after != mem_before and dram_req_delta == 0:
        violations.append({
            "kind": "traffic-conservation",
            "message": f"operation {op_label(op)} changed backing memory "
                       "without recording any dram_req traffic",
            "op": op_label(op),
        })
    if dram_req_delta != access_delta:
        violations.append({
            "kind": "traffic-conservation",
            "message": f"operation {op_label(op)} recorded {dram_req_delta} "
                       f"dram_req messages but {access_delta} DRAM accesses",
            "op": op_label(op),
        })

    mm.normalize_timing()
    return violations


def check_state_invariants(mm: MicroMachine) -> List[dict]:
    """The shared invariant table, asserted on the current state."""
    violations = check_swmr_walk(mm.l1s, mm.l2)
    violations += check_l2_clean_words_match_memory(mm.l2, mm.memory)
    return violations
