"""BFS exploration of the micro-machine state space.

Two scenarios:

* ``free`` — every core may issue any enabled operation at every step:
  the full asynchronous interleaving of the ``--ops`` alphabet.  The
  ghost tracks only *published* values, so the state space is the product
  of architectural cache/directory/memory states.
* ``handoff`` — each core runs a fixed DTS work-stealing script (parent
  writes a task payload, publishes, hands off through an AMO flag; thief
  takes the flag, self-invalidates, reads the payload, writes a
  continuation back) with AMO-flag guards standing in for spin-waits.
  All interleavings of the scripts are explored; ``check`` steps assert
  the reader observes the *last write*, which is what the flush/AMO/
  invalidate discipline promises.  ``break_coherence`` drops the
  discipline step named by the control (the same knobs as
  ``repro.runtime``'s deliberately-broken variants) to prove the checker
  catches the bug with a minimal counterexample.

BFS (not DFS) so the first violating path found is shortest-possible
before greedy minimization even runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.verify.counterexample import Counterexample, minimize_counterexample
from repro.verify.model import (
    Ghost,
    MicroMachine,
    OP_NAMES,
    amo_operand,
    apply_op,
    canonical_key,
    check_state_invariants,
    mix_protocols,
    store_value,
)

#: AMO-flag values used by the handoff scripts (beyond the free-mode
#: value domain): 1 = parent handed off, 2 = thief done, 3 = parent ack.
HANDOFF_FLAGS = frozenset({0, 1, 2, 3})

BREAK_MODES = ("no-thief-flush", "no-parent-invalidate")


@dataclass
class MixResult:
    """Outcome of exploring one protocol mix."""

    mix: str
    protocols: Tuple[str, ...]
    words: int
    scenario: str
    break_coherence: Optional[str]
    states: int = 0
    transitions: int = 0
    #: True iff the full reachable space was enumerated without hitting
    #: ``max_states``.  An incomplete run proves nothing and is treated
    #: as a failure by the CLI.
    complete: bool = False
    counterexample: Optional[Counterexample] = None

    @property
    def ok(self) -> bool:
        return self.complete and self.counterexample is None

    def summary(self) -> str:
        status = ("VIOLATION" if self.counterexample is not None
                  else "ok" if self.complete else "INCOMPLETE")
        extra = ""
        if self.counterexample is not None:
            extra = (f"  [{self.counterexample.violations[0]['kind']}"
                     f" in {len(self.counterexample.steps)} steps]")
        mode = self.scenario
        if self.break_coherence:
            mode += f"/{self.break_coherence}"
        return (f"{self.mix:<8} {mode:<28} states={self.states:<6} "
                f"transitions={self.transitions:<7} {status}{extra}")


# ----------------------------------------------------------------------
# Enabled-operation enumeration
# ----------------------------------------------------------------------
def _free_ops(mm: MicroMachine, allowed: frozenset) -> List[Tuple]:
    ops: List[Tuple] = []
    for core, l1 in enumerate(mm.l1s):
        if "load" in allowed:
            for w in range(mm.words):
                ops.append(("load", core, w))
        if "store" in allowed:
            for w in range(mm.words):
                ops.append(("store", core, w, store_value(core, w)))
        if "amo" in allowed:
            ops.append(("amo", core, 0, amo_operand(core)))
        if "flush" in allowed and l1.NEEDS_FLUSH:
            ops.append(("flush", core))
        if "invalidate" in allowed and l1.NEEDS_INVALIDATE:
            ops.append(("invalidate", core))
        if "l1evict" in allowed and any(True for _ in l1.tags.lines()):
            ops.append(("l1evict", core))
        if "bypass" in allowed:
            ops.append(("bypass", core, 0))
    if "l2evict" in allowed and any(True for _ in mm.l2.banks[0].tags.lines()):
        ops.append(("l2evict",))
    return ops


def build_handoff_scripts(
    protocols: Sequence[str],
    break_coherence: Optional[str],
) -> List[List[Tuple[Optional[Tuple[int, int]], Tuple]]]:
    """Per-core ``(guard, op)`` step lists for the DTS handoff scenario.

    ``guard`` is ``(flag_word, value)``: the step is enabled only once
    the globally published flag equals ``value`` (a spin-wait).  Word 0
    is the task payload, word 1 the handoff flag.  Cores beyond the
    parent/thief pair just poll the payload — background readers that
    must never observe garbage.
    """
    if break_coherence is not None and break_coherence not in BREAK_MODES:
        raise ValueError(
            f"unknown break_coherence {break_coherence!r}; "
            f"pick one of {', '.join(BREAK_MODES)}"
        )
    needs_flush = {"gpu-wb"}
    needs_inval = {"denovo", "gpu-wt", "gpu-wb"}
    parent, thief = 0, 1
    p_proto, t_proto = protocols[parent], protocols[thief]

    p_script: List[Tuple[Optional[Tuple[int, int]], Tuple]] = []
    # Parent writes the payload, publishes it, hands off via the flag.
    p_script.append((None, ("store", parent, 0, store_value(parent, 0))))
    if p_proto in needs_flush:
        p_script.append((None, ("flush", parent)))
    p_script.append((None, ("amo", parent, 1, 1)))
    # ... thief runs ...
    # Parent takes the continuation back the same way.
    p_script.append(((1, 2), ("amo", parent, 1, 3)))
    if p_proto in needs_inval and break_coherence != "no-parent-invalidate":
        p_script.append((None, ("invalidate", parent)))
    p_script.append((None, ("check", parent, 0)))

    t_script: List[Tuple[Optional[Tuple[int, int]], Tuple]] = []
    t_script.append(((1, 1), ("amo", thief, 1, 0)))
    if t_proto in needs_inval:
        t_script.append((None, ("invalidate", thief)))
    t_script.append((None, ("check", thief, 0)))
    t_script.append((None, ("store", thief, 0, store_value(thief, 0))))
    if t_proto in needs_flush and break_coherence != "no-thief-flush":
        t_script.append((None, ("flush", thief)))
    t_script.append((None, ("amo", thief, 1, 2)))

    scripts = [p_script, t_script]
    for extra in range(2, len(protocols)):
        scripts.append([(None, ("load", extra, 0))])
    return scripts


def _handoff_ops(ghost_published: Dict[int, int], pcs: Tuple[int, ...],
                 scripts) -> List[Tuple[Tuple, Tuple[int, ...]]]:
    enabled = []
    for core, pc in enumerate(pcs):
        if pc >= len(scripts[core]):
            continue
        guard, op = scripts[core][pc]
        if guard is not None and ghost_published.get(guard[0], 0) != guard[1]:
            continue
        next_pcs = pcs[:core] + (pc + 1,) + pcs[core + 1:]
        enabled.append((op, next_pcs))
    return enabled


# ----------------------------------------------------------------------
# BFS
# ----------------------------------------------------------------------
def explore(
    mix: str,
    cores: int = 2,
    words: int = 2,
    ops: str = "all",
    scenario: str = "free",
    break_coherence: Optional[str] = None,
    max_states: int = 500_000,
) -> MixResult:
    """Exhaustively explore one protocol mix; stop at the first violation.

    Returns a :class:`MixResult`; on violation its ``counterexample`` is
    already minimized.
    """
    if scenario not in ("free", "handoff"):
        raise ValueError(f"unknown scenario {scenario!r}")
    if scenario == "free" and break_coherence is not None:
        raise ValueError("break_coherence requires the handoff scenario")
    if scenario == "handoff":
        # The handoff scripts need a payload word and a flag word.
        words = max(words, 2)
    protocols = mix_protocols(mix, cores)
    if ops == "all":
        allowed = frozenset(OP_NAMES)
    else:
        allowed = frozenset(ops.split(","))
        unknown = allowed - frozenset(OP_NAMES)
        if unknown:
            raise ValueError(f"unknown ops: {', '.join(sorted(unknown))}")

    mm = MicroMachine(protocols, words)
    handoff = scenario == "handoff"
    scripts = None
    if handoff:
        scripts = build_handoff_scripts(protocols, break_coherence)
        mm.domain = frozenset(mm.domain | HANDOFF_FLAGS)

    result = MixResult(mix, protocols, words, scenario, break_coherence)

    ghost0 = Ghost(last_write={} if handoff else None)
    mm.normalize_timing()
    snap0 = mm.snapshot()
    pcs0 = tuple(0 for _ in scripts) if handoff else ()
    key0 = canonical_key(snap0, ghost0.export(), pcs0)
    # key -> (snapshot, ghost export, script pcs); parents for the
    # root-to-state op path used to build counterexamples.
    states = {key0: (snap0, ghost0.export(), pcs0)}
    parents: Dict = {key0: None}
    queue = deque([key0])

    def path_to(key) -> List[Tuple]:
        steps: List[Tuple] = []
        while parents[key] is not None:
            key, op = parents[key]
            steps.append(op)
        steps.reverse()
        return steps

    while queue:
        key = queue.popleft()
        snap, gexp, pcs = states[key]
        mm.restore(snap)
        if handoff:
            enabled = _handoff_ops(gexp["published"], pcs, scripts)
        else:
            enabled = [(op, ()) for op in _free_ops(mm, allowed)]
        for op, next_pcs in enabled:
            mm.restore(snap)
            ghost = Ghost.from_export(gexp)
            violations = apply_op(mm, ghost, op)
            violations += check_state_invariants(mm)
            result.transitions += 1
            if violations:
                cx = Counterexample(
                    mix=mix, protocols=protocols, words=words,
                    scenario=scenario, break_coherence=break_coherence,
                    steps=path_to(key) + [op], violations=violations,
                )
                result.states = len(states)
                result.complete = True  # found, not truncated
                result.counterexample = minimize_counterexample(cx)
                return result
            nsnap = mm.snapshot()
            nkey = canonical_key(nsnap, ghost.export(), next_pcs)
            if nkey not in states:
                if len(states) >= max_states:
                    result.states = len(states)
                    result.complete = False
                    return result
                states[nkey] = (nsnap, ghost.export(), next_pcs)
                parents[nkey] = (key, op)
                queue.append(nkey)

    result.states = len(states)
    result.complete = True
    return result
