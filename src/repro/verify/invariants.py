"""Shared coherence invariant table.

One table, two consumers:

* ``repro.sanitize.Sanitizer`` spot-checks these invariants on states a
  running application happens to reach (periodic SWMR walks);
* ``repro.verify`` asserts them at *every* reachable state of the
  micro-machine, turning the spot checks into a static guarantee.

Keeping the walk here (and importing it from both sides) is itself an
invariant, enforced by ``tests/test_verify.py``: every kind the sanitizer
can emit from a walk is a kind the checker enumerates exhaustively.

Each check returns a list of JSON-able violation records
``{"kind": ..., "message": ..., **details}``; an empty list means the
invariant holds.
"""

from __future__ import annotations

from typing import Dict, List

from repro.mem.address import WORDS_PER_LINE
from repro.mem.cacheline import EXCLUSIVE, MODIFIED, REGISTERED, SHARED

#: L1 states that claim ownership of a line (single-writer states).
OWNED_STATES = (MODIFIED, EXCLUSIVE, REGISTERED)

#: Violation kinds the SWMR walk can emit (sanitizer *and* checker).
WALK_KINDS = frozenset({
    "multiple-owners",
    "directory-owner-mismatch",
    "dirty-shared-line",
    "untracked-sharer",
    "dirty-unowned-line",
    "stale-directory-owner",
    "stale-directory-sharer",
    "inclusion-violation",
    "mesi-m-clean",
})

#: Kinds only the exhaustive checker asserts (they need a ghost memory or
#: per-transition accounting the peek-only sanitizer cannot afford).
CHECKER_ONLY_KINDS = frozenset({
    "l2-clean-word-mismatch",
    "value-coherence",
    "corrupt-value",
    "amo-stale-old",
    "handoff-stale-read",
    "traffic-conservation",
})


def _v(kind: str, message: str, **details) -> dict:
    record = {"kind": kind, "message": message}
    record.update(details)
    return record


def check_swmr_walk(l1s, l2) -> List[dict]:
    """One full SWMR/directory-precision walk over L1 tags and the L2.

    Asserts, in both directions:

    * at most one owned (M/E/R) copy of a line system-wide;
    * owned copies match ``directory_entry().owner`` exactly;
    * MESI SHARED copies are clean and on the directory sharer list;
    * untracked clean (V) lines carry no dirty words unless the protocol
      is write-back (GPU-WB);
    * directory ``owner``/``sharers`` claims are backed by L1 state;
    * inclusion: tracked (MESI/DeNovo-owned) L1 lines have an L2 entry;
    * MESI MODIFIED implies a nonzero dirty mask (the invariant that lets
      ``MesiL1._evict_victim`` write back ``victim.dirty_mask`` alone).
    """
    violations: List[dict] = []
    by_core = {l1.core_id: l1 for l1 in l1s}
    owners_seen: Dict[int, int] = {}
    for l1 in l1s:
        core_id = l1.core_id
        for line in l1.tags.lines():
            state = line.state
            if state in OWNED_STATES:
                other = owners_seen.get(line.addr)
                if other is not None:
                    violations.append(_v(
                        "multiple-owners",
                        f"line {line.addr:#x} owned by cores {other} and "
                        f"{core_id} simultaneously",
                        addr=line.addr, cores=[other, core_id],
                    ))
                owners_seen[line.addr] = core_id
                entry = l2.directory_entry(line.addr)
                dir_owner = entry.owner if entry is not None else None
                if dir_owner != core_id:
                    violations.append(_v(
                        "directory-owner-mismatch",
                        f"core {core_id} holds {line.addr:#x} in "
                        f"{state} but the directory owner is {dir_owner}",
                        addr=line.addr, core=core_id, directory_owner=dir_owner,
                    ))
                if entry is None:
                    violations.append(_v(
                        "inclusion-violation",
                        f"core {core_id} holds {line.addr:#x} in {state} "
                        "but the line is not resident in the L2",
                        addr=line.addr, core=core_id,
                    ))
                if state == MODIFIED and not line.dirty_mask:
                    violations.append(_v(
                        "mesi-m-clean",
                        f"core {core_id} holds {line.addr:#x} MODIFIED "
                        "with an empty dirty mask",
                        addr=line.addr, core=core_id,
                    ))
            elif state == SHARED:
                if line.dirty_mask:
                    violations.append(_v(
                        "dirty-shared-line",
                        f"core {core_id} holds {line.addr:#x} SHARED "
                        f"with dirty words (mask {line.dirty_mask:#x})",
                        addr=line.addr, core=core_id,
                    ))
                entry = l2.directory_entry(line.addr)
                if entry is None or core_id not in entry.sharers:
                    violations.append(_v(
                        "untracked-sharer",
                        f"core {core_id} holds {line.addr:#x} SHARED but "
                        "is missing from the directory sharer list",
                        addr=line.addr, core=core_id,
                    ))
                if entry is None:
                    violations.append(_v(
                        "inclusion-violation",
                        f"core {core_id} holds {line.addr:#x} in {state} "
                        "but the line is not resident in the L2",
                        addr=line.addr, core=core_id,
                    ))
            elif line.dirty_mask and not l1.NEEDS_FLUSH:
                # V lines must be clean except under write-back GPU-WB,
                # whose dirty words await an explicit flush.
                violations.append(_v(
                    "dirty-unowned-line",
                    f"core {core_id} ({l1.PROTOCOL}) holds dirty words in "
                    f"unowned line {line.addr:#x}",
                    addr=line.addr, core=core_id,
                ))
    # Inverse direction: directory claims must be backed by L1 state.
    for bank in l2.banks:
        for entry in bank.tags.lines():
            if entry.owner is not None:
                holder = by_core.get(entry.owner)
                line = holder.resident(entry.addr) if holder is not None else None
                if line is None or line.state not in OWNED_STATES:
                    violations.append(_v(
                        "stale-directory-owner",
                        f"directory says core {entry.owner} owns "
                        f"{entry.addr:#x} but its L1 holds "
                        f"{line.state if line else 'nothing'}",
                        addr=entry.addr, core=entry.owner,
                    ))
            for sharer in sorted(entry.sharers):
                holder = by_core.get(sharer)
                line = holder.resident(entry.addr) if holder is not None else None
                if line is None or line.state != SHARED:
                    violations.append(_v(
                        "stale-directory-sharer",
                        f"directory lists core {sharer} as a sharer of "
                        f"{entry.addr:#x} but its L1 holds "
                        f"{line.state if line else 'nothing'}",
                        addr=entry.addr, core=sharer,
                    ))
    return violations


def check_l2_clean_words_match_memory(l2, memory) -> List[dict]:
    """Clean L2 words must equal backing DRAM.

    Every L2 data mutation (write-back merge, write-through, AMO, owner
    recall) sets the word's dirty bit, so a clean word was filled from
    DRAM and never modified.  This is the safety argument for
    ``_evict_l2_line`` dropping clean victims without a DRAM write; the
    checker proves it over every reachable state.
    """
    violations: List[dict] = []
    for bank in l2.banks:
        for entry in bank.tags.lines():
            mem = memory.read_line(entry.addr)
            for i in range(WORDS_PER_LINE):
                if entry.dirty_mask & (1 << i):
                    continue
                if entry.data[i] != mem[i]:
                    violations.append(_v(
                        "l2-clean-word-mismatch",
                        f"L2 holds {entry.addr:#x} word {i} clean as "
                        f"{entry.data[i]} but DRAM has {mem[i]}",
                        addr=entry.addr, word=i,
                        l2_value=entry.data[i], dram_value=mem[i],
                    ))
    return violations
