"""Counterexample replay, minimization, and Perfetto export.

A counterexample is just the operation sequence from the initial state to
the first violating transition.  Because the micro-machine is
deterministic and every op is applied unconditionally on replay, a
counterexample is a self-contained reproducer: no snapshots needed.

Minimization is greedy single-step removal to a fixpoint: drop a step,
replay, and keep the removal only if the replay still produces a
violation of the *same kind* as the original (same-kind, not just
any-violation, so minimization cannot wander onto an unrelated bug).
BFS already found a shortest path, so this mostly strips enabling noise
(loads by third cores, redundant evictions) that rode along.

The Perfetto export renders each operation as a task span on its core's
track (scripted ops in program order, 10 cycles apart) plus an instant
marker at the violation, so the failure reads like any other repro trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.trace.perfetto import export_chrome_trace
from repro.trace.tracer import Tracer
from repro.verify.model import (
    Ghost,
    MicroMachine,
    apply_op,
    check_state_invariants,
    op_label,
)


@dataclass
class Counterexample:
    """A minimal op sequence whose last step violates an invariant."""

    mix: str
    protocols: Tuple[str, ...]
    words: int
    scenario: str
    break_coherence: Optional[str]
    #: Operation tuples, applied unconditionally in order.
    steps: List[Tuple]
    #: Violation records produced by the final step (first = primary).
    violations: List[dict]

    @property
    def kind(self) -> str:
        return self.violations[0]["kind"]

    def to_json(self) -> dict:
        return {
            "mix": self.mix,
            "protocols": list(self.protocols),
            "words": self.words,
            "scenario": self.scenario,
            "break_coherence": self.break_coherence,
            "steps": [list(op) for op in self.steps],
            "step_labels": [op_label(op) for op in self.steps],
            "violations": self.violations,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "Counterexample":
        return cls(
            mix=obj["mix"],
            protocols=tuple(obj["protocols"]),
            words=obj["words"],
            scenario=obj["scenario"],
            break_coherence=obj["break_coherence"],
            steps=[tuple(op) for op in obj["steps"]],
            violations=list(obj["violations"]),
        )


def _fresh_machine(cx: Counterexample) -> Tuple[MicroMachine, Ghost]:
    from repro.verify.explore import HANDOFF_FLAGS  # avoid import cycle

    mm = MicroMachine(cx.protocols, cx.words)
    handoff = cx.scenario == "handoff"
    if handoff:
        mm.domain = frozenset(mm.domain | HANDOFF_FLAGS)
    mm.normalize_timing()
    return mm, Ghost(last_write={} if handoff else None)


def replay_counterexample(cx: Counterexample,
                          steps: Optional[List[Tuple]] = None) -> List[dict]:
    """Replay ``steps`` (default: the counterexample's own) from scratch.

    Guards are ignored — the sequence is replayed literally — and the
    ghost expectations are recomputed from the replayed prefix, so a
    subsequence that drops a producing store also drops the expectation
    it produced (minimization stays honest).  Returns every violation
    observed across the whole replay.
    """
    mm, ghost = _fresh_machine(cx)
    observed: List[dict] = []
    for op in (cx.steps if steps is None else steps):
        observed += apply_op(mm, ghost, op)
        observed += check_state_invariants(mm)
    return observed


def minimize_counterexample(cx: Counterexample) -> Counterexample:
    """Greedy single-step-removal minimization to a fixpoint."""
    kind = cx.kind
    steps = list(cx.steps)
    violations = cx.violations
    changed = True
    while changed:
        changed = False
        i = 0
        while i < len(steps):
            candidate = steps[:i] + steps[i + 1:]
            observed = replay_counterexample(cx, candidate)
            kept = [v for v in observed if v["kind"] == kind]
            if kept:
                steps = candidate
                violations = kept
                changed = True
            else:
                i += 1
    return Counterexample(
        mix=cx.mix, protocols=cx.protocols, words=cx.words,
        scenario=cx.scenario, break_coherence=cx.break_coherence,
        steps=steps, violations=violations,
    )


#: Cycles between rendered steps / span duration in the exported trace.
_STEP_CYCLES = 10
_SPAN_CYCLES = 8


def export_counterexample_trace(cx: Counterexample, path: str) -> str:
    """Render the counterexample through the standard Perfetto exporter.

    Each step is a task span on its issuing core's track (the global
    ``l2evict`` gets its own "L2" track); the violation is an instant
    event on the faulting core at the end.  The result opens in the
    Perfetto UI exactly like a `repro trace` capture.
    """
    tracer = Tracer()
    l2_track = len(cx.protocols)
    for core, proto in enumerate(cx.protocols):
        tracer.core_labels[core] = f"core {core} ({proto})"
    tracer.core_labels[l2_track] = "L2 / directory"
    for i, op in enumerate(cx.steps):
        track = l2_track if op[0] == "l2evict" else op[1]
        start = i * _STEP_CYCLES
        tracer.task_begin(track, start, i, op_label(op))
        tracer.task_end(track, start + _SPAN_CYCLES)
    primary = cx.violations[0]
    fault_core = primary.get("core", 0)
    end = len(cx.steps) * _STEP_CYCLES
    tracer.mem_burst(fault_core, end, f"violation:{primary['kind']}", 1, 0)
    tracer.set_meta(
        source="repro verify",
        mix=cx.mix,
        scenario=cx.scenario,
        break_coherence=cx.break_coherence or "none",
        violation_kind=primary["kind"],
        violation_message=primary["message"],
        steps=len(cx.steps),
    )
    tracer.finish(end + _STEP_CYCLES)
    return export_chrome_trace(tracer, path)
