"""Exhaustive explicit-state model checking of the coherence protocols.

``repro.verify`` drives the *real* ``L1Cache`` subclasses and ``SharedL2``
transition functions (not a re-modeled abstraction) over a tiny 1-line,
1-bank micro-machine, exhaustively interleaving architectural operations
per core via BFS over canonicalized ``export_state`` snapshots.  Every
reachable state is checked against the shared invariant table
(``repro.verify.invariants``, also imported by ``repro.sanitize``) plus a
ghost last-writer memory for data-value coherence; violations produce a
minimal operation-sequence counterexample replayable through the Perfetto
exporter.  See DESIGN.md §8.
"""

from repro.verify.counterexample import (
    Counterexample,
    export_counterexample_trace,
    minimize_counterexample,
    replay_counterexample,
)
from repro.verify.explore import MixResult, explore
from repro.verify.model import MIXES, MicroMachine, mix_protocols

__all__ = [
    "Counterexample",
    "MIXES",
    "MicroMachine",
    "MixResult",
    "explore",
    "export_counterexample_trace",
    "minimize_counterexample",
    "mix_protocols",
    "replay_counterexample",
]
