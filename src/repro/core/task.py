"""Tasks: the unit of dynamic parallelism (Section II-C of the paper).

A task is a Python object whose ``execute`` method is a simulated-thread
generator (it ``yield from``-s :class:`repro.cores.context.ThreadContext`
operations).  Each task owns a small *descriptor block* in simulated shared
memory holding the fields the runtime synchronizes on:

* ``rc``  (+0)  — the reference count of unfinished children, updated with
  AMOs (or plain stores under the DTS optimization);
* ``hsc`` (+8)  — the ``has_stolen_child`` flag added by Direct Task
  Stealing (Section IV-C);
* ``args`` (+16…) — ``ARG_WORDS`` words standing in for the task's captured
  arguments; the spawning thread stores them and the executing thread loads
  them, so descriptor transfer traffic is modeled even though argument
  *values* travel on the Python object for convenience.

Application data (arrays, graphs) lives entirely in simulated memory, so a
missing runtime flush/invalidate corrupts real results — the tests rely on
this to validate the Figure 3 protocols end-to-end.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.mem.address import WORD_BYTES


class Task:
    """Base class for all tasks (paper Figure 2: ``class task``)."""

    #: Number of simulated argument words in the descriptor.
    ARG_WORDS = 2

    def __init__(self):
        self.parent: Optional["Task"] = None
        self.task_id: int = 0
        self.desc_addr: int = 0  # descriptor base address in simulated memory

    # ------------------------------------------------------------------
    # Descriptor field addresses
    # ------------------------------------------------------------------
    @property
    def rc_addr(self) -> int:
        return self.desc_addr

    @property
    def hsc_addr(self) -> int:
        return self.desc_addr + WORD_BYTES

    def arg_addr(self, index: int) -> int:
        return self.desc_addr + 2 * WORD_BYTES + index * WORD_BYTES

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def execute(self, rt, ctx):
        """Task body: a generator yielding architectural operations."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator if ever called

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(id={self.task_id})"


class FuncTask(Task):
    """Adapts a generator function ``fn(rt, ctx)`` into a task."""

    def __init__(self, fn: Callable):
        super().__init__()
        self.fn = fn

    def execute(self, rt, ctx):
        yield from self.fn(rt, ctx)
