"""High-level parallel patterns: ``parallel_for`` and ``parallel_invoke``.

These mirror the templated generic patterns of Intel TBB / Cilk Plus shown
in Figure 2 of the paper: ``parallel_invoke`` forks a set of task bodies
and joins them (divide-and-conquer); ``parallel_for`` recursively splits an
index range into half-ranges until the *grain size* is reached, then runs
the loop body serially on each leaf chunk.  Grain size is the task
granularity knob studied in Section V-D / Figure 4.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.task import FuncTask, Task


class RangeTask(Task):
    """Recursive binary splitting of ``[lo, hi)`` down to ``grain``."""

    ARG_WORDS = 3

    def __init__(self, lo: int, hi: int, grain: int, body: Callable):
        super().__init__()
        if grain < 1:
            raise ValueError("grain size must be >= 1")
        self.lo = lo
        self.hi = hi
        self.grain = grain
        self.body = body

    def execute(self, rt, ctx):
        if self.hi - self.lo <= self.grain:
            yield from self.body(rt, ctx, self.lo, self.hi)
            return
        mid = (self.lo + self.hi) // 2
        left = RangeTask(self.lo, mid, self.grain, self.body)
        right = RangeTask(mid, self.hi, self.grain, self.body)
        yield from rt.fork_join(ctx, self, [left, right])


def parallel_for(rt, ctx, lo: int, hi: int, body: Callable, grain: int = 1):
    """Run ``body(rt, ctx, chunk_lo, chunk_hi)`` over ``[lo, hi)`` in parallel.

    Equivalent to the paper's ``parallel_for( 0, n, [&](int i){...} )`` with
    a TBB-style ``grainsize``; the body receives a chunk, not a single
    index, so per-chunk loops can batch their memory operations.
    """
    if hi <= lo:
        return
    root = RangeTask(lo, hi, grain, body)
    yield from rt.run_inline(ctx, root)


def parallel_invoke(rt, ctx, *bodies: Callable):
    """Fork each generator function ``body(rt, ctx)`` and join them all."""
    if not bodies:
        return
    root = _InvokeAllTask(bodies)
    yield from rt.run_inline(ctx, root)


class _InvokeAllTask(Task):
    def __init__(self, bodies: Sequence[Callable]):
        super().__init__()
        self.bodies = bodies

    def execute(self, rt, ctx):
        children = [FuncTask(body) for body in self.bodies]
        yield from rt.fork_join(ctx, self, children)
