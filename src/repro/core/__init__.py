"""The paper's primary contribution: work-stealing runtimes for HCC + DTS."""

from repro.core.patterns import RangeTask, parallel_for, parallel_invoke
from repro.core.runtime import WorkStealingRuntime
from repro.core.task import FuncTask, Task
from repro.core.taskqueue import TaskDeque

__all__ = [
    "Task",
    "FuncTask",
    "TaskDeque",
    "WorkStealingRuntime",
    "parallel_for",
    "parallel_invoke",
    "RangeTask",
]
