"""Work-stealing runtimes for hardware, heterogeneous, and DTS systems.

This module implements all three runtime variants of the paper's Figure 3:

* ``hw``  (Figure 3a) — baseline for hardware-based cache coherence:
  per-deque spin locks around every deque access; AMO reference counts.
* ``hcc`` (Figure 3b) — heterogeneous cache coherence: every deque access
  additionally invalidates the whole private cache after the lock acquire
  and flushes it before the release; stolen tasks execute between an
  invalidate and a flush; the parent invalidates after ``wait`` in case a
  child was stolen; the reference count is polled with ``amo_or(rc, 0)``.
* ``dts`` (Figure 3c) — direct task stealing: deques become thread-private
  (ULI disabled around local accesses instead of locks); steals are ULI
  round trips serviced by a victim-side handler; the handler sets the
  parent's ``has_stolen_child`` flag before exporting a task, letting the
  runtime skip AMOs, flushes and the final invalidate whenever no child was
  actually stolen (the DAG-consistency optimizations of Section IV-C).

The variant is normally derived from the machine's configuration, but can
be forced (e.g. running the HCC runtime on a MESI machine — the coherence
ops no-op — or ablating the DTS software optimizations).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.chaselev import ChaseLevDeque
from repro.core.task import Task
from repro.core.taskqueue import TaskDeque
from repro.engine.simulator import SimulationError
from repro.engine.watchdog import Watchdog
from repro.machine import Machine
from repro.mem.address import WORD_BYTES
from repro.trace.tracer import NULL_TRACER

#: Modeled fixed costs (in "instructions" of Work) of runtime bookkeeping.
SPAWN_OVERHEAD = 6
TASK_START_OVERHEAD = 4

#: Idle cycles after a failed steal attempt before retrying; consecutive
#: failures back off exponentially up to the cap (classic work-stealing
#: backoff, bounding probe churn at 256 cores).  The cap is deliberately
#: small: long sleeps delay work discovery and flatten exactly the steal
#: dynamics the paper measures.
STEAL_BACKOFF = 24
STEAL_BACKOFF_CAP = 128


class WorkStealingRuntime:
    """A TBB/Cilk-like library runtime running on a simulated Machine."""

    VARIANTS = ("hw", "hcc", "dts")

    def __init__(
        self,
        machine: Machine,
        variant: Optional[str] = None,
        deque_capacity: int = 4096,
        handler_steals_tail: bool = False,
        dts_elide_queue_sync: bool = True,
        dts_elide_parent_sync: bool = True,
        serial_elision: bool = False,
        deque_kind: str = "lock",
        steal_policy: str = "random",
        watchdog: Optional[int] = None,
        break_coherence: Optional[str] = None,
    ):
        if variant is None:
            if machine.config.dts:
                variant = "dts"
            elif machine.config.tiny_protocol != "mesi":
                variant = "hcc"
            else:
                variant = "hw"
        if variant not in self.VARIANTS:
            raise ValueError(f"unknown runtime variant {variant!r}")
        self.machine = machine
        self.variant = variant
        #: Serial elision: fork_join runs children as plain nested calls —
        #: no deques, no reference counts, no coherence ops.  This is the
        #: "serial IO" baseline of Table III (the Cilk serial elision).
        self.serial_elision = serial_elision
        self.handler_steals_tail = handler_steals_tail
        #: Ablation flags for the two DTS software optimizations (Section IV-B/C).
        self.dts_elide_queue_sync = dts_elide_queue_sync
        self.dts_elide_parent_sync = dts_elide_parent_sync

        if deque_kind not in ("lock", "chase-lev"):
            raise ValueError(f"unknown deque kind {deque_kind!r}")
        if steal_policy not in ("random", "big-first"):
            raise ValueError(f"unknown steal policy {steal_policy!r}")
        #: Victim selection: "random" (the paper) or "big-first", an
        #: asymmetry-aware policy in the spirit of Torng et al. [ISCA'16]
        #: that probes a big core before falling back to random — big cores
        #: run the root of the task tree and hold the largest subtasks.
        self.steal_policy = steal_policy
        self._big_core_ids = machine.big_core_ids()
        #: Deadlock watchdog grace period in cycles (None = no watchdog).
        #: Must exceed the longest single task's cycle count: the heartbeat
        #: only advances at scheduling points (task start, spawn, handler).
        self.watchdog_grace = watchdog
        #: Deliberately-broken coherence disciplines for sanitizer positive
        #: controls (repro.sanitize): "no-thief-flush" skips the flush
        #: after a stolen task; "no-parent-invalidate" skips the parent's
        #: post-wait invalidate.  Never use outside robustness testing.
        if break_coherence not in (None, "no-thief-flush", "no-parent-invalidate"):
            raise ValueError(f"unknown break_coherence mode {break_coherence!r}")
        self.break_coherence = break_coherence
        #: Monotonic scheduling-progress counter sampled by the watchdog.
        self.progress = 0
        if deque_kind == "chase-lev" and variant == "dts":
            raise ValueError(
                "DTS makes deques thread-private; a lock-free deque is moot"
            )
        self.deque_kind = deque_kind
        self.contexts = machine.make_contexts()
        self.n_threads = machine.config.n_cores
        deque_cls = TaskDeque if deque_kind == "lock" else ChaseLevDeque
        self.deques = [
            deque_cls(machine, tid, deque_capacity) for tid in range(self.n_threads)
        ]
        # One mailbox word per thread, each on its own cache line.
        self._mailboxes = [
            machine.address_space.alloc_words(1, f"mailbox_{tid}")
            for tid in range(self.n_threads)
        ]
        self.tasks: Dict[int, Task] = {}
        self._next_task_id = 1
        self.done = False
        self.stats = machine.stats.child("runtime")
        #: Event tracer (repro.trace); the machine's, NULL_TRACER when off.
        #: ``_tracing`` is hoisted so hot loops pay one attribute test.
        self.tracer = getattr(machine, "tracer", NULL_TRACER)
        self._tracing = self.tracer.enabled
        machine.runtime = self
        if self.variant == "dts":
            self._install_uli_handlers()

    # ------------------------------------------------------------------
    # Task registration
    # ------------------------------------------------------------------
    def register_task(self, task: Task, parent: Optional[Task]) -> Task:
        """Assign an id and a descriptor block (host-side bookkeeping)."""
        task.task_id = self._next_task_id
        self._next_task_id += 1
        task.parent = parent
        task.desc_addr = self.machine.address_space.alloc_words(
            2 + task.ARG_WORDS, f"task_{task.task_id}"
        )
        self.tasks[task.task_id] = task
        return task

    def _init_descriptor(self, ctx, task: Task):
        """Simulated stores initializing rc/hsc/args (task construction)."""
        yield from ctx.work(SPAWN_OVERHEAD)
        yield from ctx.store(task.rc_addr, 0)
        yield from ctx.store(task.hsc_addr, 0)
        for i in range(task.ARG_WORDS):
            yield from ctx.store(task.arg_addr(i), 0)

    # ------------------------------------------------------------------
    # Public API: spawn / wait / fork_join
    # ------------------------------------------------------------------
    def spawn(self, ctx, task: Task):
        """Figure 3 ``task::spawn``: enqueue on the current thread's deque."""
        self.stats.add("spawns")
        self.progress += 1
        dq = self.deques[ctx.tid]
        if self.deque_kind == "chase-lev":
            # Lock-free publication; the push itself flushes user data on
            # protocols that need it before the tail becomes visible.
            yield from dq.push(ctx, task.task_id)
        elif self.variant == "hw":
            yield from dq.lock_acquire(ctx)
            yield from dq.enqueue(ctx, task.task_id)
            yield from dq.lock_release(ctx)
        elif self.variant == "hcc":
            yield from dq.lock_acquire(ctx)
            yield from ctx.cache_invalidate()
            yield from dq.enqueue(ctx, task.task_id)
            yield from ctx.cache_flush()
            yield from dq.lock_release(ctx)
        else:  # dts
            yield from ctx.uli_disable()
            yield from dq.enqueue(ctx, task.task_id)
            yield from ctx.uli_enable()
            if not self.dts_elide_queue_sync:
                # Ablation: keep the conservative per-spawn flush.
                yield from ctx.cache_flush()

    def wait(self, ctx, parent: Task):
        """Figure 3 ``task::wait``: scheduling loop until children join."""
        if self.variant == "hw":
            yield from self._wait_hw(ctx, parent)
        elif self.variant == "hcc":
            yield from self._wait_hcc(ctx, parent)
        else:
            yield from self._wait_dts(ctx, parent)

    def fork_join(self, ctx, parent: Task, children: List[Task]):
        """Spawn ``children`` of ``parent`` and wait for all of them.

        This is the building block behind ``parallel_invoke`` and the
        recursive splitting of ``parallel_for`` (paper Figure 2).
        """
        if not children:
            return
        if self.serial_elision:
            # Serial elision: children are plain nested calls.
            for child in children:
                self.register_task(child, parent)
                yield from child.execute(self, ctx)
            return
        yield from ctx.store(parent.rc_addr, len(children))
        for child in children:
            self.register_task(child, parent)
            yield from self._init_descriptor(ctx, child)
        for child in children:
            yield from self.spawn(ctx, child)
        yield from self.wait(ctx, parent)

    def run_inline(self, ctx, task: Task):
        """Execute a fresh parentless task on the current thread."""
        self.register_task(task, parent=None)
        if self.serial_elision:
            yield from task.execute(self, ctx)
            return
        yield from self._init_descriptor(ctx, task)
        yield from self._run_task(ctx, task)

    # ------------------------------------------------------------------
    # Task execution
    # ------------------------------------------------------------------
    def _run_task(self, ctx, task: Task):
        # Task bodies and their fixed per-task bookkeeping are *work*: the
        # instruction counts here are invariant across schedules, unlike
        # the hunting/polling loops around them whose iteration counts
        # scale with wait durations (see Core.spinning).
        core = ctx.core
        spin_prev = core.spinning
        core.spinning = False
        self.stats.add("tasks_executed")
        self.progress += 1
        if self._tracing:
            now = self.machine.sim.now
            self.tracer.core_state(ctx.tid, now, "running-task")
            self.tracer.task_begin(
                ctx.tid, now, task.task_id, type(task).__name__
            )
        for i in range(task.ARG_WORDS):
            yield from ctx.load(task.arg_addr(i))
        yield from ctx.work(TASK_START_OVERHEAD)
        yield from task.execute(self, ctx)
        core.spinning = spin_prev
        if self._tracing:
            self.tracer.task_end(ctx.tid, self.machine.sim.now)

    def _decrement_parent_amo(self, ctx, task: Task):
        if task.parent is not None:
            yield from ctx.amo_sub(task.parent.rc_addr, 1)

    def _choose_victim(self, ctx) -> int:
        if self.steal_policy == "big-first":
            # Probe an actual big core: candidates come from the machine's
            # big-core id list, not an assumed 0..n_big-1 id range.
            big_candidates = [c for c in self._big_core_ids if c != ctx.tid]
            if big_candidates and ctx.rng.random() < 0.5:
                return big_candidates[ctx.rng.randint(0, len(big_candidates) - 1)]
        return ctx.choose_victim()

    # ------------------------------------------------------------------
    # Steal backoff
    # ------------------------------------------------------------------
    def _steal_backoff(self, ctx):
        failures = getattr(ctx, "_steal_failures", 0)
        ctx._steal_failures = failures + 1
        window = min(STEAL_BACKOFF << min(failures, 6), STEAL_BACKOFF_CAP)
        if self._tracing:
            self.tracer.core_state(ctx.tid, self.machine.sim.now, "idle")
        yield from ctx.idle(window + ctx.rng.randint(0, window))

    @staticmethod
    def _steal_succeeded(ctx):
        ctx._steal_failures = 0

    # ------------------------------------------------------------------
    # Variant: hardware-based cache coherence (Figure 3a)
    # ------------------------------------------------------------------
    def _poll_local_hw(self, ctx):
        dq = self.deques[ctx.tid]
        if self.deque_kind == "chase-lev":
            task_id = yield from dq.take(ctx)
        else:
            yield from dq.lock_acquire(ctx)
            task_id = yield from dq.dequeue_tail(ctx)
            yield from dq.lock_release(ctx)
        if not task_id:
            return False
        task = self.tasks[task_id]
        self.stats.add("local_dequeues")
        yield from self._run_task(ctx, task)
        yield from self._decrement_parent_amo(ctx, task)
        return True

    def _steal_hw(self, ctx):
        if self.n_threads < 2:
            yield from ctx.idle(STEAL_BACKOFF)
            return False
        self.stats.add("steal_attempts")
        # The attempt's start cycle lives on ctx, not in a frame local:
        # checkpoint restore replays frames before the clock is restored,
        # so a local read of sim.now would be stale for a steal that was
        # in flight at the snapshot (repro.engine.checkpoint fixes the
        # ctx attribute up concretely after the replay).
        steal_start = ctx._steal_start = self.machine.sim.now
        if self._tracing:
            self.tracer.core_state(ctx.tid, steal_start, "steal-attempt")
        vid = self._choose_victim(ctx)
        vdq = self.deques[vid]
        if self.deque_kind == "chase-lev":
            task_id = yield from vdq.steal(ctx)
        else:
            yield from vdq.lock_acquire(ctx)
            task_id = yield from vdq.steal_head(ctx)
            yield from vdq.lock_release(ctx)
        if not task_id:
            yield from self._steal_backoff(ctx)
            return False
        self._steal_succeeded(ctx)
        task = self.tasks[task_id]
        self.stats.add("steals")
        if self._tracing:
            self.tracer.steal(
                ctx.tid, vid, task_id, ctx._steal_start,
                self.machine.sim.now, self.variant,
            )
        yield from self._run_task(ctx, task)
        yield from self._decrement_parent_amo(ctx, task)
        return True

    def _wait_hw(self, ctx, parent: Task):
        core = ctx.core
        core.spinning = True
        while True:
            if self._tracing:
                self.tracer.core_state(ctx.tid, self.machine.sim.now, "waiting")
            rc = yield from ctx.load(parent.rc_addr)
            if rc <= 0:
                core.spinning = False
                return
            executed = yield from self._poll_local_hw(ctx)
            if not executed:
                yield from self._steal_hw(ctx)

    # ------------------------------------------------------------------
    # Variant: heterogeneous cache coherence (Figure 3b)
    # ------------------------------------------------------------------
    def _poll_local_hcc(self, ctx):
        dq = self.deques[ctx.tid]
        if self.deque_kind == "chase-lev":
            # Control accesses are AMOs (coherence-point reads), so the
            # whole-cache invalidate/flush pair is unnecessary locally.
            task_id = yield from dq.take(ctx)
        else:
            yield from dq.lock_acquire(ctx)
            yield from ctx.cache_invalidate()
            task_id = yield from dq.dequeue_tail(ctx)
            yield from ctx.cache_flush()
            yield from dq.lock_release(ctx)
        if not task_id:
            return False
        task = self.tasks[task_id]
        self.stats.add("local_dequeues")
        yield from self._run_task(ctx, task)
        yield from self._decrement_parent_amo(ctx, task)
        return True

    def _steal_hcc(self, ctx):
        if self.n_threads < 2:
            yield from ctx.idle(STEAL_BACKOFF)
            return False
        self.stats.add("steal_attempts")
        # On ctx for checkpoint restore; see _steal_hw.
        steal_start = ctx._steal_start = self.machine.sim.now
        if self._tracing:
            self.tracer.core_state(ctx.tid, steal_start, "steal-attempt")
        vid = self._choose_victim(ctx)
        vdq = self.deques[vid]
        if self.deque_kind == "chase-lev":
            task_id = yield from vdq.steal(ctx)
        else:
            yield from vdq.lock_acquire(ctx)
            yield from ctx.cache_invalidate()
            task_id = yield from vdq.steal_head(ctx)
            yield from ctx.cache_flush()
            yield from vdq.lock_release(ctx)
        if not task_id:
            yield from self._steal_backoff(ctx)
            return False
        self._steal_succeeded(ctx)
        task = self.tasks[task_id]
        self.stats.add("steals")
        if self._tracing:
            self.tracer.steal(
                ctx.tid, vid, task_id, ctx._steal_start,
                self.machine.sim.now, self.variant,
            )
        # The stolen task's parent ran on another thread: invalidate to see
        # its writes, flush afterwards so the parent can see ours.
        yield from ctx.cache_invalidate()
        yield from self._run_task(ctx, task)
        if self.break_coherence != "no-thief-flush":
            yield from ctx.cache_flush()
        yield from self._decrement_parent_amo(ctx, task)
        return True

    def _wait_hcc(self, ctx, parent: Task):
        core = ctx.core
        core.spinning = True
        while True:
            if self._tracing:
                self.tracer.core_state(ctx.tid, self.machine.sim.now, "waiting")
            rc = yield from ctx.amo_or(parent.rc_addr, 0)
            if rc <= 0:
                break
            executed = yield from self._poll_local_hcc(ctx)
            if not executed:
                yield from self._steal_hcc(ctx)
        core.spinning = False
        # A child may have been stolen and executed remotely: invalidate so
        # the parent sees its children's writes (DAG consistency, req. 2).
        if self.break_coherence != "no-parent-invalidate":
            yield from ctx.cache_invalidate()

    # ------------------------------------------------------------------
    # Variant: direct task stealing (Figure 3c)
    # ------------------------------------------------------------------
    def _poll_local_dts(self, ctx):
        dq = self.deques[ctx.tid]
        yield from ctx.uli_disable()
        task_id = yield from dq.dequeue_tail(ctx)
        yield from ctx.uli_enable()
        if not task_id:
            return False
        task = self.tasks[task_id]
        self.stats.add("local_dequeues")
        yield from self._run_task(ctx, task)
        yield from self._finish_child_dts(ctx, task)
        return True

    def _finish_child_dts(self, ctx, task: Task):
        """Join a locally executed child: plain rc update unless stolen."""
        if task.parent is None:
            return
        if not self.dts_elide_parent_sync:
            yield from self._decrement_parent_amo(ctx, task)
            return
        hsc = yield from ctx.load(task.parent.hsc_addr)
        if hsc:
            yield from self._decrement_parent_amo(ctx, task)
        else:
            rc = yield from ctx.load(task.parent.rc_addr)
            yield from ctx.store(task.parent.rc_addr, rc - 1)

    def _steal_dts(self, ctx):
        if self.n_threads < 2:
            yield from ctx.idle(STEAL_BACKOFF)
            return False
        self.stats.add("steal_attempts")
        # On ctx for checkpoint restore; see _steal_hw.
        steal_start = ctx._steal_start = self.machine.sim.now
        if self._tracing:
            self.tracer.core_state(ctx.tid, steal_start, "steal-attempt")
        vid = self._choose_victim(ctx)
        ack = yield from ctx.uli_send_req(vid)
        if not ack:
            self.stats.add("steal_nacks")
            yield from self._steal_backoff(ctx)
            return False
        task_id = yield from ctx.amo("xchg", self._mailboxes[ctx.tid], 0)
        if not task_id:
            yield from self._steal_backoff(ctx)
            return False
        self._steal_succeeded(ctx)
        task = self.tasks[task_id]
        self.stats.add("steals")
        if self._tracing:
            self.tracer.steal(
                ctx.tid, vid, task_id, ctx._steal_start,
                self.machine.sim.now, self.variant,
            )
        yield from ctx.cache_invalidate()
        yield from self._run_task(ctx, task)
        if self.break_coherence != "no-thief-flush":
            yield from ctx.cache_flush()
        yield from self._decrement_parent_amo(ctx, task)
        return True

    def _wait_dts(self, ctx, parent: Task):
        core = ctx.core
        core.spinning = True
        if self._tracing:
            self.tracer.core_state(ctx.tid, self.machine.sim.now, "waiting")
        rc = yield from ctx.load(parent.rc_addr)
        while rc > 0:
            if self._tracing:
                self.tracer.core_state(ctx.tid, self.machine.sim.now, "waiting")
            executed = yield from self._poll_local_dts(ctx)
            if not executed:
                yield from self._steal_dts(ctx)
            if self.dts_elide_parent_sync:
                hsc = yield from ctx.load(parent.hsc_addr)
            else:
                hsc = 1
            if hsc:
                rc = yield from ctx.amo_or(parent.rc_addr, 0)
            else:
                rc = yield from ctx.load(parent.rc_addr)
        core.spinning = False
        if self.dts_elide_parent_sync:
            hsc = yield from ctx.load(parent.hsc_addr)
        else:
            hsc = 1
        if hsc and self.break_coherence != "no-parent-invalidate":
            # Some child ran remotely: invalidate to see its writes.
            yield from ctx.cache_invalidate()

    # ------------------------------------------------------------------
    # DTS victim-side ULI handler (Figure 3c lines 47-53)
    # ------------------------------------------------------------------
    def _install_uli_handlers(self) -> None:
        for tid in range(self.n_threads):
            self.machine.cores[tid].uli_handler_factory = self._handler_factory(tid)

    def _handler_factory(self, victim_tid: int):
        ctx = self.contexts[victim_tid]
        dq = self.deques[victim_tid]

        def handler(thief_core_id: int):
            # Handler runs scale with steal-attempt arrivals (timing), so
            # their instructions are spin for the sampling estimator.
            core = ctx.core
            spin_prev = core.spinning
            core.spinning = True
            self.stats.add("uli_handler_runs")
            if self.handler_steals_tail:
                task_id = yield from dq.dequeue_tail(ctx)
            else:
                task_id = yield from dq.steal_head(ctx)
            if task_id:
                # Only a successful export is watchdog progress: a wedged
                # victim still answers steal requests with NACKs forever.
                self.progress += 1
                task = self.tasks[task_id]
                if task.parent is not None:
                    yield from ctx.store(task.parent.hsc_addr, 1)
                yield from ctx.amo("xchg", self._mailboxes[thief_core_id], task_id)
                yield from ctx.cache_flush()
                self.stats.add("uli_tasks_exported")
            core.spinning = spin_prev

        return handler

    # ------------------------------------------------------------------
    # Threads and program execution
    # ------------------------------------------------------------------
    def _main_thread(self, ctx, root: Task):
        if self.variant == "dts":
            yield from ctx.uli_enable()
        yield from self.run_inline(ctx, root)
        self.done = True

    def _worker_thread(self, ctx):
        poll = {
            "hw": self._poll_local_hw,
            "hcc": self._poll_local_hcc,
            "dts": self._poll_local_dts,
        }[self.variant]
        steal = {
            "hw": self._steal_hw,
            "hcc": self._steal_hcc,
            "dts": self._steal_dts,
        }[self.variant]
        if self.variant == "dts":
            yield from ctx.uli_enable()
        ctx.core.spinning = True
        while not self.done:
            if self._tracing:
                self.tracer.core_state(ctx.tid, self.machine.sim.now, "waiting")
            executed = yield from poll(ctx)
            if not executed and not self.done:
                yield from steal(ctx)
        ctx.core.spinning = False

    def run(self, root: Task, main_tid: int = 0) -> int:
        """Execute ``root`` to completion; returns elapsed cycles."""
        if self.done:
            raise SimulationError("runtime already ran a program")
        self.start_threads(root, main_tid)
        return self._drive()

    def start_threads(self, root: Task, main_tid: int = 0) -> None:
        """Start one thread generator per core (main runs ``root``).

        Split out of :meth:`run` so checkpoint restore
        (``repro.engine.checkpoint``) can start fresh generators and replay
        the send log against them without entering the event loop.
        """
        machine = self.machine
        for tid in range(self.n_threads):
            ctx = self.contexts[tid]
            if self._tracing:
                self.tracer.core_state(tid, machine.sim.now, "idle")
            if tid == main_tid:
                machine.cores[tid].start(self._main_thread(ctx, root))
            else:
                machine.cores[tid].start(self._worker_thread(ctx))

    def resume_run(self) -> int:
        """Drive a restored simulation to completion.

        The machine must have been populated by ``Machine.restore``; the
        reported elapsed cycles are measured from cycle 0 so they match an
        uninterrupted run of the same program.  A snapshot may postdate
        program completion (workers still halting), in which case this
        just drains the remaining events.
        """
        return self._drive(start=0)

    def _drive(self, start: Optional[int] = None) -> int:
        """Run the event loop (with watchdog) until the program completes."""
        machine = self.machine
        if start is None:
            start = machine.sim.now
        watchdog = None
        if self.watchdog_grace is not None:
            watchdog = Watchdog(
                machine.sim,
                progress=lambda: self.progress,
                grace=self.watchdog_grace,
                outstanding=lambda: not self.done,
                diagnose=self.diagnostic,
            )
            watchdog.arm()
        try:
            machine.sim.run()
        finally:
            if watchdog is not None:
                watchdog.cancel()
        if not self.done:
            raise SimulationError("simulation drained without completing the program")
        if self._tracing:
            self.tracer.finish(machine.sim.now)
        return machine.sim.now - start

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def mailbox_addr(self, tid: int) -> int:
        return self._mailboxes[tid]

    def diagnostic(self) -> dict:
        """JSON-able stalled-state dump for DeadlockError / failed grid points.

        Everything here is simulated state (no object identities or host
        timestamps) so the dump is deterministic and pickles across the
        grid's worker processes.
        """
        machine = self.machine
        cores = {}
        for core in machine.cores:
            cores[str(core.core_id)] = {
                "halted": core.halted,
                "uli_enabled": core.uli_enabled,
                "in_handler": core._in_handler,
                "uli_waiting": core._uli_waiting,
                "pending_uli_from": core._pending_uli,
                "breakdown": dict(core.cycle_breakdown()),
            }
        deques = {}
        for tid, dq in enumerate(self.deques):
            deques[str(tid)] = {
                "head": machine.host_read_word(dq.head_addr),
                "tail": machine.host_read_word(dq.tail_addr),
            }
        return {
            "variant": self.variant,
            "deque_kind": self.deque_kind,
            "done": self.done,
            "runtime_stats": {k: v for k, v in self.stats.items()},
            "cores": cores,
            "deques": deques,
        }
