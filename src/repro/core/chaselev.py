"""Chase-Lev lock-free work-stealing deque (extension).

The paper's baseline runtime uses per-deque spin locks (Figure 3); its
related-work section cites Chase & Lev's lock-free deque [SPAA'05] as the
standard way to cut task-queue synchronization cost on hardware-coherent
machines.  This module implements that deque over simulated memory so the
repository can ablate lock-based vs lock-free queues (``deque_kind``
option of :class:`repro.core.runtime.WorkStealingRuntime`).

Algorithm (single owner, many thieves):

* ``push``  (owner):  store task at ``tail``; increment ``tail``.
* ``take``  (owner):  decrement ``tail``; fence; read ``head``; if the
  deque looks empty, restore ``tail`` and CAS ``head`` for the last item;
  otherwise return the tail item.
* ``steal`` (thief):  read ``head``/``tail``; read the item; CAS ``head``
  to claim it.

On hardware-coherent machines this avoids locks entirely.  On HCC it is
only safe if every control-variable access is an AMO (so it is performed
at a coherence point); plain loads of ``head``/``tail`` can be stale under
reader-initiated protocols.  We therefore issue all control accesses as
AMOs (``amo_or(x, 0)`` reads), which models exactly why the paper's
Section III runtime keeps the simpler lock: lock-free deques trade one
lock round trip for several mandatory AMO round trips on HCC.
"""

from __future__ import annotations

from repro.engine.simulator import SimulationError
from repro.mem.address import WORD_BYTES


class ChaseLevDeque:
    """Lock-free deque in simulated memory (owner take / thief steal)."""

    def __init__(self, machine, owner_tid: int, capacity: int = 4096):
        self.owner_tid = owner_tid
        self.capacity = capacity
        # Fault-injection hook (repro.faults): steal-abort storms.  Only
        # steal() consults it — take() must never abort, because losing
        # the owner's pop of the last task would deadlock the runtime.
        self.fault_injector = getattr(machine, "fault_injector", None)
        base = machine.address_space.alloc_words(2 + capacity, f"cldeque_{owner_tid}")
        self.head_addr = base
        self.tail_addr = base + WORD_BYTES
        self._slots = base + 2 * WORD_BYTES

    def _slot_addr(self, index: int) -> int:
        return self._slots + (index % self.capacity) * WORD_BYTES

    # ------------------------------------------------------------------
    # Owner operations
    # ------------------------------------------------------------------
    def push(self, ctx, task_id: int):
        """Owner-side enqueue at the tail."""
        tail = yield from ctx.amo_or(self.tail_addr, 0)
        head = yield from ctx.amo_or(self.head_addr, 0)
        if tail - head >= self.capacity:
            raise SimulationError(
                f"chase-lev deque {self.owner_tid} overflow (capacity {self.capacity})"
            )
        yield from ctx.store(self._slot_addr(tail), task_id)
        if ctx.core.l1.NEEDS_FLUSH:
            # The slot write must be visible before the tail publication.
            yield from ctx.cache_flush()
        yield from ctx.amo("xchg", self.tail_addr, tail + 1)

    def take(self, ctx):
        """Owner-side LIFO dequeue from the tail; 0 when empty."""
        tail = yield from ctx.amo_sub(self.tail_addr, 1)
        tail -= 1  # amo_sub returned the pre-decrement value
        head = yield from ctx.amo_or(self.head_addr, 0)
        if head > tail:
            # Empty: undo the decrement.
            yield from ctx.amo("xchg", self.tail_addr, head)
            return 0
        task_id = yield from ctx.load(self._slot_addr(tail))
        if head != tail:
            return task_id
        # Last element: race with thieves via CAS on head.
        old = yield from ctx.cas(self.head_addr, head, head + 1)
        yield from ctx.amo("xchg", self.tail_addr, head + 1)
        if old == head:
            return task_id
        return 0

    # ------------------------------------------------------------------
    # Thief operation
    # ------------------------------------------------------------------
    def steal(self, ctx):
        """Thief-side FIFO steal from the head; 0 when empty or lost race."""
        head = yield from ctx.amo_or(self.head_addr, 0)
        tail = yield from ctx.amo_or(self.tail_addr, 0)
        if head >= tail:
            return 0
        if self.fault_injector is not None and self.fault_injector.steal_aborts(
            ctx.tid
        ):
            # Adversarial abort before the claiming CAS: indistinguishable
            # from losing the race, so the task stays stealable.
            return 0
        if ctx.core.l1.NEEDS_INVALIDATE:
            # The slot may be stale in our private cache.
            yield from ctx.cache_invalidate()
        task_id = yield from ctx.load(self._slot_addr(head))
        old = yield from ctx.cas(self.head_addr, head, head + 1)
        if old == head:
            return task_id
        return 0
