"""Per-thread task deques living in simulated shared memory.

Each worker thread owns one double-ended queue (Section II-C): the owner
pushes/pops task pointers LIFO at the tail; thieves steal FIFO from the
head.  Following the paper, mutual exclusion uses a per-deque spin lock
built from atomic read-modify-write operations — not a lock-free Chase-Lev
deque — because the coherence cost of the lock + the surrounding
invalidate/flush is precisely what Section III characterizes.

Every field (lock, head, tail, slots) is a word in simulated memory; all
accesses go through the issuing core's L1, so stale head/tail reads really
happen under the software-centric protocols unless the runtime invalidates
first.
"""

from __future__ import annotations

from repro.engine.simulator import SimulationError
from repro.mem.address import WORD_BYTES


class TaskDeque:
    """A lock-protected double-ended queue of task ids."""

    #: Spin-lock backoff bounds (cycles).
    BACKOFF_MIN = 8
    BACKOFF_MAX = 256

    def __init__(self, machine, owner_tid: int, capacity: int = 4096):
        self.owner_tid = owner_tid
        self.capacity = capacity
        base = machine.address_space.alloc_words(3 + capacity, f"deque_{owner_tid}")
        self.lock_addr = base
        self.head_addr = base + WORD_BYTES
        self.tail_addr = base + 2 * WORD_BYTES
        self._slots = base + 3 * WORD_BYTES

    def _slot_addr(self, index: int) -> int:
        return self._slots + (index % self.capacity) * WORD_BYTES

    # ------------------------------------------------------------------
    # Locking (generator methods)
    # ------------------------------------------------------------------
    def lock_acquire(self, ctx):
        """Test-and-set spin lock with bounded exponential backoff."""
        backoff = self.BACKOFF_MIN
        while True:
            old = yield from ctx.cas(self.lock_addr, 0, 1)
            if old == 0:
                return
            yield from ctx.idle(backoff + (ctx.rng.randint(0, backoff) if backoff else 0))
            backoff = min(backoff * 2, self.BACKOFF_MAX)

    def lock_release(self, ctx):
        """Release the lock so that the release is globally visible.

        Ownership protocols (MESI, DeNovo) and write-through (GPU-WT)
        propagate a plain store; GPU-WB dirty data stays private until a
        flush, so the release must itself be an AMO at the shared cache.
        """
        if ctx.core.l1.LOCK_RELEASE_AMO:
            yield from ctx.amo("xchg", self.lock_addr, 0)
        else:
            yield from ctx.store(self.lock_addr, 0)

    # ------------------------------------------------------------------
    # Queue operations (caller must hold the lock / have ULI disabled)
    # ------------------------------------------------------------------
    def enqueue(self, ctx, task_id: int):
        """Push a task id at the tail (``enq`` in Figure 3)."""
        tail = yield from ctx.load(self.tail_addr)
        head = yield from ctx.load(self.head_addr)
        if tail - head >= self.capacity:
            raise SimulationError(
                f"task deque {self.owner_tid} overflow (capacity {self.capacity})"
            )
        yield from ctx.store(self._slot_addr(tail), task_id)
        yield from ctx.store(self.tail_addr, tail + 1)

    def dequeue_tail(self, ctx):
        """Pop LIFO from the tail (``deq``); returns 0 when empty."""
        tail = yield from ctx.load(self.tail_addr)
        head = yield from ctx.load(self.head_addr)
        if head >= tail:
            return 0
        tail -= 1
        task_id = yield from ctx.load(self._slot_addr(tail))
        yield from ctx.store(self.tail_addr, tail)
        return task_id

    def steal_head(self, ctx):
        """Pop FIFO from the head (``steal``); returns 0 when empty."""
        head = yield from ctx.load(self.head_addr)
        tail = yield from ctx.load(self.tail_addr)
        if head >= tail:
            return 0
        task_id = yield from ctx.load(self._slot_addr(head))
        yield from ctx.store(self.head_addr, head + 1)
        return task_id
