"""Thread context: the programming interface of a simulated hardware thread.

Runtime and application code calls these generator methods with
``yield from``; each wraps one architectural operation.  Example::

    def execute(self, ctx):
        n = yield from ctx.load(self.addr)
        yield from ctx.work(5)
        yield from ctx.store(self.addr, n + 1)

The context also carries the thread id and a per-thread RNG used by victim
selection, keeping all randomness deterministic per run.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.engine.rng import XorShift64
from repro.cores import ops


class ThreadContext:
    """Per-hardware-thread handle passed to runtime and task code."""

    def __init__(self, core, tid: int, n_threads: int, rng: XorShift64):
        self.core = core
        self.tid = tid
        self.n_threads = n_threads
        self.rng = rng

    # ------------------------------------------------------------------
    # Memory operations
    # ------------------------------------------------------------------
    def load(self, addr: int):
        value = yield ops.Load(addr)
        return value

    def bypass_load(self, addr: int):
        """Uncached load resolved at the shared L2 (mailbox reads)."""
        value = yield ops.Load(addr, bypass=True)
        return value

    def store(self, addr: int, value: Any):
        yield ops.Store(addr, value)

    def amo(self, op: str, addr: int, operand: Any):
        old = yield ops.Amo(op, addr, operand)
        return old

    def cas(self, addr: int, expected: int, desired: int):
        """Compare-and-swap; returns the old value (== expected on success)."""
        old = yield ops.Amo("cas", addr, (expected, desired))
        return old

    def amo_add(self, addr: int, delta: int):
        old = yield ops.Amo("add", addr, delta)
        return old

    def amo_sub(self, addr: int, delta: int):
        old = yield ops.Amo("sub", addr, delta)
        return old

    def amo_or(self, addr: int, bits: int):
        old = yield ops.Amo("or", addr, bits)
        return old

    def amo_min(self, addr: int, value: int):
        old = yield ops.Amo("min", addr, value)
        return old

    # ------------------------------------------------------------------
    # Compute / waiting
    # ------------------------------------------------------------------
    def work(self, n: int):
        if n > 0:
            yield ops.Work(n)

    def idle(self, n: int):
        if n > 0:
            yield ops.Idle(n)

    # ------------------------------------------------------------------
    # Software coherence instructions
    # ------------------------------------------------------------------
    def cache_invalidate(self):
        yield ops.INV_ALL

    def cache_flush(self):
        yield ops.FLUSH_ALL

    # ------------------------------------------------------------------
    # User-level interrupts (Direct Task Stealing)
    # ------------------------------------------------------------------
    def uli_send_req(self, victim_tid: int):
        """Send a steal request; blocks until ACK/NACK. Returns ack bool."""
        ack = yield ops.UliSend(victim_tid)
        return ack

    def uli_enable(self):
        yield ops.ULI_ENABLE

    def uli_disable(self):
        yield ops.ULI_DISABLE

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def choose_victim(self) -> int:
        """Uniform random victim other than self (paper: random selection)."""
        return self.rng.choice_excluding(self.n_threads, self.tid)

    def load_pair(self, addr_a: int, addr_b: int) -> Tuple[int, int]:
        a = yield from self.load(addr_a)
        b = yield from self.load(addr_b)
        return a, b
