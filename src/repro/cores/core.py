"""Core model: executes one hardware thread as a generator coroutine.

Two core flavours, matching the paper's Table II:

* **tiny** — single-issue in-order RV64GC-like core: ``Work(n)`` costs n
  cycles, memory latency is fully exposed.
* **big** — 4-way out-of-order core approximated with two parameters:
  ``issue_width`` divides compute cycles and ``mlp_factor`` scales the
  exposed portion of memory miss latency (modeling overlap from the
  128-entry ROB / 16-entry LSQ).

The core owns the ULI receive logic of Section IV: a one-entry request
buffer, enable/disable state, NACK when disabled/busy/halted, handler entry
latency (a few cycles on tiny cores, tens on big cores — in-flight
instructions must drain), and handler execution as a nested coroutine frame
on top of the interrupted thread.

Hot-path structure
------------------

Executing one architectural operation is the simulator's innermost loop,
so the coroutine machinery is built around a *trampoline*
(:meth:`Core._resume`): each iteration sends the previous result into the
thread generator, dispatches the yielded op through a per-kind
bound-method table (``_op_*``, each returning ``(result, latency)``), and
then asks the simulator for the event-fusion fast path
(:meth:`repro.engine.simulator.Simulator.try_fuse`).  If the completion
is strictly earlier than every pending event the clock advances inline
and the loop continues — no closure allocation, no heap traffic, no event
dispatch.  Otherwise the op parks its result on the core and schedules a
*preallocated* continuation (``_complete_cont``), which re-enters the
trampoline when the event fires.  ULI handler entry is checked at exactly
the op boundaries where the unfused path would check it, so fused and
unfused runs are cycle- and statistic-identical.
"""

from __future__ import annotations

import math
from functools import partial
from typing import Any, Callable, Generator, List, Optional

from repro.cores import ops
from repro.engine.simulator import SimulationError, Simulator
from repro.engine.stats import StatGroup
from repro.mem.address import LINE_MASK as _LINE_MASK
from repro.mem.address import WORD_INDEX_MASK as _WORD_INDEX_MASK
from repro.mem.address import WORD_SHIFT as _WORD_SHIFT
from repro.mem.amo import apply_amo
from repro.trace.tracer import NULL_TRACER

#: Sentinel pushed on the resume stack when a handler interrupts a core
#: that is blocked waiting for its own ULI response (no value to deliver).
_NO_RESULT = object()

#: Stat categories for the Figure 7 execution-time breakdown.
TIME_CATEGORIES = (
    "compute",
    "load",
    "store",
    "amo",
    "flush",
    "invalidate",
    "uli",
    "idle",
)


class Core:
    """One core tile: coroutine executor + ULI receiver."""

    __slots__ = (
        "core_id",
        "sim",
        "l1",
        "tracer",
        "is_big",
        "issue_width",
        "mlp_factor",
        "uli_network",
        "uli_entry_latency",
        "stats",
        "_frames",
        "_resume_stack",
        "halted",
        "spinning",
        "uli_enabled",
        "_in_handler",
        "_pending_uli",
        "_uli_waiting",
        "_deferred_uli_resp",
        "_uli_send_time",
        "_handler_entry_time",
        "_wait_handler_cycles",
        "uli_handler_factory",
        "_peers",
        "_pending_result",
        "_complete_cont",
        "_resume_none_cont",
        "_dispatch_table",
        "_cnt",
        "_c_uli_handler",
        "_ckpt_log",
        "_prof",
        "_ff",
    )

    #: Op kind -> unbound ``_op_*`` method name; bound per instance into
    #: ``_dispatch_table`` so dispatch is one dict lookup + call.
    _OP_METHODS = {
        "work": "_op_work",
        "idle": "_op_idle",
        "load": "_op_load",
        "store": "_op_store",
        "amo": "_op_amo",
        "invalidate": "_op_invalidate",
        "flush": "_op_flush",
        "uli_enable": "_op_uli_enable",
        "uli_disable": "_op_uli_disable",
        "uli_send": "_op_uli_send",
    }

    def __init__(
        self,
        core_id: int,
        sim: Simulator,
        l1,
        stats: StatGroup,
        is_big: bool = False,
        issue_width: int = 1,
        mlp_factor: float = 1.0,
        uli_network=None,
        uli_entry_latency: int = 5,
        tracer=NULL_TRACER,
    ):
        self.core_id = core_id
        self.sim = sim
        self.l1 = l1
        self.tracer = tracer
        self.is_big = is_big
        self.issue_width = max(1, issue_width)
        self.mlp_factor = mlp_factor
        self.uli_network = uli_network
        self.uli_entry_latency = uli_entry_latency
        self.stats = stats.child(f"core_{core_id}")

        self._frames: List[Generator] = []
        self._resume_stack: List[Any] = []
        self.halted = True

        #: Scheduler-spin marker, maintained by the runtime: True while the
        #: thread is hunting for work (steal attempts, join polling, worker
        #: idle loops), False inside task bodies and their fixed per-task
        #: bookkeeping.  Spin instruction counts scale with *wait
        #: durations*, so they are timing artifacts, not work; counting
        #: them separately gives the sampling estimator a timing-invariant
        #: instruction measure (repro.sampling.estimate).
        self.spinning = False

        # ULI receiver state.
        self.uli_enabled = False
        self._in_handler = False
        self._pending_uli: Optional[int] = None
        self._uli_waiting = False
        self._deferred_uli_resp: Optional[bool] = None
        self._uli_send_time = 0
        self._handler_entry_time = 0
        self._wait_handler_cycles = 0
        #: Set by the runtime: thief_id -> handler generator.
        self.uli_handler_factory: Optional[Callable[[int], Generator]] = None

        #: Wired by :meth:`attach_peers`; an unattached core fails loudly.
        self._peers: Optional[List["Core"]] = None

        # Preallocated continuations: the event queue carries these bound
        # methods instead of a fresh closure per operation.
        self._pending_result: Any = None
        self._complete_cont = self._on_complete
        self._resume_none_cont = self._resume_none

        # Per-kind dispatch table and the raw counter dict of this core's
        # stat group: op handlers run a few hundred thousand times per
        # simulated millisecond, so they index the (in-place mutated)
        # defaultdict directly instead of going through handle objects.
        self._dispatch_table = {
            kind: getattr(self, name) for kind, name in self._OP_METHODS.items()
        }
        self._cnt = self.stats._counters
        self._c_uli_handler = self.stats.counter("cycles_uli_handler")

        #: Checkpoint send-log (repro.engine.checkpoint): when a Machine
        #: enables checkpointing this is the machine-wide list that records
        #: every value sent into a thread generator, so a snapshot can be
        #: restored by replaying the sends into freshly created coroutines.
        #: None (the default) costs the hot loop one branch per operation.
        self._ckpt_log: Optional[List] = None

        #: Wall-clock profiler (repro.obs.profile.WallProfiler) armed by
        #: EngineProfiler.install.  None (the default) costs one branch per
        #: trampoline entry; when set, _resume redirects to the probed
        #: twin.  Simulated results are identical either way — only host
        #: time is observed.
        self._prof = None

        #: Functional fast-forward state (repro.sampling.FastForwardState)
        #: armed by the sampling controller between detailed windows.  None
        #: (the default) costs one branch per trampoline entry; when set,
        #: _resume redirects to :meth:`_resume_ff`, which executes ops
        #: against flat memory with no timing model.
        self._ff = None

    # ------------------------------------------------------------------
    # Thread startup
    # ------------------------------------------------------------------
    def start(self, thread: Generator, delay: int = 0) -> None:
        """Begin executing ``thread`` on this core."""
        if self._frames:
            raise SimulationError(f"core {self.core_id} already running a thread")
        self._frames.append(thread)
        self.halted = False
        self.sim.schedule(delay, self._resume_none_cont)

    # ------------------------------------------------------------------
    # Coroutine machinery
    # ------------------------------------------------------------------
    def _resume_none(self) -> None:
        self._resume(None)

    def _on_complete(self) -> None:
        """An operation's completion event fired: take a pending ULI
        first (this is an op boundary), else resume the thread."""
        result = self._pending_result
        self._pending_result = None
        if self._pending_uli is not None and self.uli_enabled and not self._in_handler:
            self._resume_stack.append(result)
            self._enter_handler()
            return
        self._resume(result)

    def _resume(self, value: Any) -> None:
        """Drive the thread coroutine, fusing op completions inline.

        Each iteration is one architectural operation: send the previous
        result in, dispatch the yielded op, and either continue inline
        (fusion granted: the completion is provably the next event) or
        park the result and schedule the preallocated continuation.

        The fusion test is :meth:`Simulator.try_fuse` inlined with its
        operands hoisted to locals (the queue lists are mutated in place
        and ``_fusible``/``max_cycles`` cannot change while a callback is
        running, so hoisting is safe); with fusion disabled the loop pays
        exactly one extra branch per op.
        """
        if self._ff is not None:
            return self._resume_ff(value)
        if self._prof is not None:
            return self._resume_profiled(value)
        frames = self._frames
        sim = self.sim
        table = self._dispatch_table
        queue = sim._queue
        daemon_queue = sim._daemon_queue
        max_cycles = sim.max_cycles
        fusible = sim._fusible
        log = self._ckpt_log
        cid = self.core_id
        fused = 0
        frame = frames[-1]
        try:
            while True:
                try:
                    # Every value that enters a thread generator funnels
                    # through this single send, so the checkpoint log is a
                    # complete replay script for the coroutine stacks.
                    if log is not None:
                        log.append((cid, value))
                    op = frame.send(value)
                except StopIteration:
                    frames.pop()
                    if self._in_handler and frames:
                        saved = self._finish_handler()
                        if saved is _NO_RESULT:
                            return
                        value = saved
                        frame = frames[-1]
                        continue
                    if not frames:
                        self.halted = True
                    return
                try:
                    fn = table[op.KIND]
                except KeyError:
                    raise SimulationError(f"unknown op kind {op.KIND!r}") from None
                out = fn(op)
                if out is None:
                    # Asynchronous op (uli_send): resumes via deliver_uli_response.
                    return
                value, latency = out
                if self._in_handler:
                    # Victim-side DTS cost (Section VI-C: "<1% of execution time").
                    self._c_uli_handler.add(latency)
                completion = sim.now + latency
                if (
                    fusible
                    and completion <= max_cycles
                    and not sim._stop_requested
                    and (not queue or queue[0][0] > completion)
                    and (not daemon_queue or daemon_queue[0][0] > completion)
                ):
                    sim.now = completion
                    fused += 1
                    # Op boundary: identical ULI handler entry check to the
                    # one _on_complete performs on the unfused path.
                    if (
                        self._pending_uli is not None
                        and self.uli_enabled
                        and not self._in_handler
                    ):
                        self._resume_stack.append(value)
                        self._enter_handler()
                        return
                    continue
                self._pending_result = value
                sim.schedule_at(completion, self._complete_cont)
                return
        finally:
            if fused:
                sim.events_fused += fused

    def _resume_profiled(self, value: Any) -> None:
        """Probed twin of :meth:`_resume` (repro.obs.profile).

        Identical control flow — every branch below mirrors ``_resume``
        line for line so simulated outcomes cannot diverge — with wall
        probes around the two time sinks: ``frame.send`` (app/runtime
        generator code) and the ``_op_*`` dispatch body.  Kept separate so
        the unprofiled loop pays a single ``_prof is not None`` branch.
        """
        prof = self._prof
        enter = prof.enter
        leave = prof.exit
        frames = self._frames
        sim = self.sim
        table = self._dispatch_table
        queue = sim._queue
        daemon_queue = sim._daemon_queue
        max_cycles = sim.max_cycles
        fusible = sim._fusible
        log = self._ckpt_log
        cid = self.core_id
        fused = 0
        frame = frames[-1]
        try:
            while True:
                try:
                    if log is not None:
                        log.append((cid, value))
                    enter("runtime.coroutine")
                    try:
                        op = frame.send(value)
                    finally:
                        leave()
                except StopIteration:
                    frames.pop()
                    if self._in_handler and frames:
                        saved = self._finish_handler()
                        if saved is _NO_RESULT:
                            return
                        value = saved
                        frame = frames[-1]
                        continue
                    if not frames:
                        self.halted = True
                    return
                try:
                    fn = table[op.KIND]
                except KeyError:
                    raise SimulationError(f"unknown op kind {op.KIND!r}") from None
                enter(prof.op_label(op.KIND))
                try:
                    out = fn(op)
                finally:
                    leave()
                if out is None:
                    return
                value, latency = out
                if self._in_handler:
                    self._c_uli_handler.add(latency)
                completion = sim.now + latency
                if (
                    fusible
                    and completion <= max_cycles
                    and not sim._stop_requested
                    and (not queue or queue[0][0] > completion)
                    and (not daemon_queue or daemon_queue[0][0] > completion)
                ):
                    sim.now = completion
                    fused += 1
                    if (
                        self._pending_uli is not None
                        and self.uli_enabled
                        and not self._in_handler
                    ):
                        self._resume_stack.append(value)
                        self._enter_handler()
                        return
                    continue
                self._pending_result = value
                sim.schedule_at(completion, self._complete_cont)
                return
        finally:
            if fused:
                sim.events_fused += fused

    def _resume_ff(self, value: Any) -> None:
        """Functional fast-forward trampoline (repro.sampling).

        Executes up to ``ff.slice_budget`` instructions of the thread
        inline against the *flat* main-memory word store — architectural
        state (memory words, task queues, RNG draws, ULI handshakes)
        evolves exactly as it would in detail, but no caches, NoC, or
        latency models are touched.  Each op charges its kind's
        calibrated pseudo-cycle cost from ``ff.costs`` (the previous
        measurement window's average load/store/AMO/... latency — see
        :class:`repro.sampling.ff.FastForwardState`), work charges one
        cycle per instruction, and the slice parks at
        ``now + round(charged) + idle`` with *real* idle latency — so
        work, the steal protocol's contended memory ops, and spin
        backoff keep their detailed relative rates and the
        fast-forwarded schedule stays representative.

        The memory system must be reconciled with flat memory before the
        first fast-forward slice
        (:meth:`repro.machine.Machine.prepare_fastforward`): L1s are
        empty throughout the period, the L2 stays warm with clean copies,
        and every line a store/AMO mutates is recorded in ``ff.written``
        so its stale L2 copy can be purged on exit.
        Only ``instructions`` is counted here (identically to the detailed
        ``_op_*`` handlers); the ``cycles_*`` breakdown counters advance
        only during detailed phases and are extrapolated from window
        deltas.  ULI send/deliver/handler flows are the ordinary ones —
        interrupt latencies stay real — and the handler-entry check after
        each op matches the detailed op-boundary check exactly.
        """
        ff = self._ff
        frames = self._frames
        sim = self.sim
        cid = self.core_id
        cnt = self._cnt
        mem_lines = ff.memory._lines
        ff_written = ff.written
        quantum = ff.slice_budget
        costs = ff.costs
        c_load = costs["load"]
        c_store = costs["store"]
        c_amo = costs["amo"]
        line_mask = _LINE_MASK
        word_shift = _WORD_SHIFT
        word_index_mask = _WORD_INDEX_MASK
        # Instruction counts accumulate in locals and flush once per slice
        # (in the ``finally``): the trampoline is the sampled mode's inner
        # loop, and two counter-dict writes per op dominate it.  No
        # checkpoint send-log here — sampling refuses checkpointing.
        executed = 0
        spin = 0
        charged = 0.0
        idle_cycles = 0
        prof = self._prof
        if prof is not None:
            prof.enter("engine.fastforward")
        frame = frames[-1]
        try:
            while True:
                try:
                    op = frame.send(value)
                except StopIteration:
                    frames.pop()
                    if self._in_handler and frames:
                        saved = self._finish_handler()
                        if saved is _NO_RESULT:
                            return
                        value = saved
                        frame = frames[-1]
                        continue
                    if not frames:
                        self.halted = True
                    return
                kind = op.KIND
                if kind == "work":
                    n = op.n
                    executed += n
                    if self.spinning:
                        spin += n
                    charged += n
                    value = None
                elif kind == "load":
                    # bypass and cached loads are architecturally identical
                    # here: flat memory is the single coherent view.
                    addr = op.addr
                    line = mem_lines.get(addr & line_mask)
                    value = (
                        0
                        if line is None
                        else line[(addr >> word_shift) & word_index_mask]
                    )
                    executed += 1
                    if self.spinning:
                        spin += 1
                    charged += c_load
                elif kind == "store":
                    addr = op.addr
                    base = addr & line_mask
                    ff_written.add(base)
                    line = mem_lines.get(base)
                    if line is None:
                        line = mem_lines[base] = [0] * 8
                    line[(addr >> word_shift) & word_index_mask] = op.value
                    executed += 1
                    if self.spinning:
                        spin += 1
                    charged += c_store
                    value = None
                elif kind == "amo":
                    addr = op.addr
                    base = addr & line_mask
                    ff_written.add(base)
                    line = mem_lines.get(base)
                    if line is None:
                        line = mem_lines[base] = [0] * 8
                    idx = (addr >> word_shift) & word_index_mask
                    new, value = apply_amo(op.op, line[idx], op.operand)
                    line[idx] = new
                    executed += 1
                    if self.spinning:
                        spin += 1
                    charged += c_amo
                elif kind == "idle":
                    # Specs with stretch > 1 lengthen idle backoff:
                    # blocked cores re-poll less often, thinning the
                    # spin-wait instructions that otherwise dominate
                    # fast-forward on large machines.  Never shortened —
                    # spin loops must not collapse relative to busy
                    # cores — and never stretched in the period's
                    # cooldown tail, so every sleeper wakes to real-rate
                    # polling before the next measurement window opens.
                    idle_cycles = max(1, op.n)
                    if ff.consumed + executed < ff.stretch_until:
                        idle_cycles *= ff.idle_scale
                    value = None
                    break
                elif kind == "uli_send":
                    executed += 1
                    if self.spinning:
                        spin += 1
                    charged += 1.0
                    # Asynchronous: resumes via deliver_uli_response with
                    # the real ULI network latency.
                    self._send_uli(op.victim)
                    return
                elif kind == "invalidate" or kind == "flush":
                    # This core's L1 was dropped entering fast-forward and
                    # stays empty throughout it: architecturally a no-op.
                    executed += 1
                    if self.spinning:
                        spin += 1
                    charged += costs[kind]
                    value = None
                elif kind == "uli_enable":
                    self.uli_enabled = True
                    executed += 1
                    if self.spinning:
                        spin += 1
                    charged += 1.0
                    value = None
                elif kind == "uli_disable":
                    self.uli_enabled = False
                    executed += 1
                    if self.spinning:
                        spin += 1
                    charged += 1.0
                    value = None
                else:
                    raise SimulationError(f"unknown op kind {kind!r}")
                # Op boundary: identical ULI handler entry check to the
                # detailed trampoline's.
                if (
                    self._pending_uli is not None
                    and self.uli_enabled
                    and not self._in_handler
                ):
                    self._resume_stack.append(value)
                    self._enter_handler()
                    return
                if executed >= quantum:
                    break
            # Deterministic ±25% per-slice jitter on the charged pseudo-time.
            # Uniform charges would hold cores in perfect lockstep (real
            # machines de-phase through contention randomness); lockstepped
            # cores arrive at shared AMO counters in synchronized convoys
            # and the detailed windows then measure serialization the exact
            # run never exhibits.
            seed = (cid * 0x9E3779B1 + cnt["instructions"] + executed) & 0xFFFFFFFF
            r = ((seed * 2654435761 + 1013904223) & 0xFFFFFFFF) / 2.0**32
            delay = int(round(charged * (0.75 + 0.5 * r))) + idle_cycles
            self._pending_result = value
            sim.schedule_at(sim.now + (delay if delay > 0 else 1), self._complete_cont)
        finally:
            if executed:
                cnt["instructions"] += executed
                if spin:
                    cnt["instructions_spin"] += spin
                ff.consume(executed)
            if prof is not None:
                prof.exit()

    def _charge_memory(self, latency: int) -> int:
        """Scale exposed memory latency for big cores (MLP overlap)."""
        if latency <= 1 or self.mlp_factor >= 1.0:
            return latency
        return 1 + max(0, math.ceil((latency - 1) * self.mlp_factor))

    # ------------------------------------------------------------------
    # Per-kind op execution (bound into _dispatch_table)
    #
    # Each returns (result, latency) — or None when the op completes
    # asynchronously — and records its own instruction/cycle counters
    # through the preallocated handles.
    # ------------------------------------------------------------------
    def _op_work(self, op: ops.Work):
        n = op.n
        issue_width = self.issue_width
        latency = n if issue_width == 1 else math.ceil(n / issue_width)
        if latency < 1:
            latency = 1
        cnt = self._cnt
        cnt["instructions"] += n
        if self.spinning:
            cnt["instructions_spin"] += n
        cnt["cycles_compute"] += latency
        return None, latency

    def _op_idle(self, op: ops.Idle):
        latency = max(1, op.n)
        self._cnt["cycles_idle"] += latency
        return None, latency

    def _op_load(self, op: ops.Load):
        now = self.sim.now
        if op.bypass:
            value, latency = self.l1.l2.read_word_bypass(self.core_id, op.addr, now)
        else:
            value, latency = self.l1.load(op.addr, now)
        latency = self._charge_memory(latency)
        cnt = self._cnt
        cnt["instructions"] += 1
        if self.spinning:
            cnt["instructions_spin"] += 1
        cnt["ops_load"] += 1
        cnt["cycles_load"] += latency
        return value, latency

    def _op_store(self, op: ops.Store):
        latency = self._charge_memory(self.l1.store(op.addr, op.value, self.sim.now))
        cnt = self._cnt
        cnt["instructions"] += 1
        if self.spinning:
            cnt["instructions_spin"] += 1
        cnt["ops_store"] += 1
        cnt["cycles_store"] += latency
        return None, latency

    def _op_amo(self, op: ops.Amo):
        old, latency = self.l1.amo(op.op, op.addr, op.operand, self.sim.now)
        latency = self._charge_memory(latency)
        cnt = self._cnt
        cnt["instructions"] += 1
        if self.spinning:
            cnt["instructions_spin"] += 1
        cnt["ops_amo"] += 1
        cnt["cycles_amo"] += latency
        return old, latency

    def _op_invalidate(self, op: ops.InvAll):
        latency = max(1, self.l1.invalidate_all(self.sim.now))
        cnt = self._cnt
        cnt["instructions"] += 1
        if self.spinning:
            cnt["instructions_spin"] += 1
        cnt["ops_invalidate"] += 1
        cnt["cycles_invalidate"] += latency
        return None, latency

    def _op_flush(self, op: ops.FlushAll):
        latency = max(1, self.l1.flush_all(self.sim.now))
        cnt = self._cnt
        cnt["instructions"] += 1
        if self.spinning:
            cnt["instructions_spin"] += 1
        cnt["ops_flush"] += 1
        cnt["cycles_flush"] += latency
        return None, latency

    def _op_uli_enable(self, op: ops.UliEnable):
        self.uli_enabled = True
        cnt = self._cnt
        cnt["instructions"] += 1
        if self.spinning:
            cnt["instructions_spin"] += 1
        cnt["cycles_compute"] += 1
        return None, 1

    def _op_uli_disable(self, op: ops.UliDisable):
        self.uli_enabled = False
        cnt = self._cnt
        cnt["instructions"] += 1
        if self.spinning:
            cnt["instructions_spin"] += 1
        cnt["cycles_compute"] += 1
        return None, 1

    def _op_uli_send(self, op: ops.UliSend):
        cnt = self._cnt
        cnt["instructions"] += 1
        if self.spinning:
            cnt["instructions_spin"] += 1
        self._send_uli(op.victim)
        return None

    # ------------------------------------------------------------------
    # ULI sender side
    # ------------------------------------------------------------------
    def _send_uli(self, victim_core_id: int) -> None:
        if self.uli_network is None:
            raise SimulationError("ULI network not configured on this system")
        self.stats.add("uli_requests_sent")
        latency = self.uli_network.send_latency(self.core_id, victim_core_id)
        self._uli_waiting = True
        self._uli_send_time = self.sim.now
        victim = self._peer(victim_core_id)
        # partial (not a closure) so an in-flight request is recognizable
        # and serializable by repro.engine.checkpoint.
        self.sim.schedule(latency, partial(victim.deliver_uli_request, self.core_id))

    def deliver_uli_response(self, ack: bool) -> None:
        """Called (via event) when the victim's ACK/NACK arrives."""
        if self._in_handler:
            # We are servicing someone else's steal; hold our response.
            self._deferred_uli_resp = ack
            return
        self._uli_waiting = False
        self.stats.add("uli_acks" if ack else "uli_nacks")
        # Handler time spent while waiting was already charged per-op;
        # charge only the genuine wait here.
        wait = self.sim.now - self._uli_send_time - self._wait_handler_cycles
        self._wait_handler_cycles = 0
        if self._ff is None:
            # Fast-forward waits elapse in pseudo-cycles; charging them
            # would leak pseudo-time into the (detailed-only) counters
            # that sampled estimation treats as measured.
            self.stats.add("cycles_uli", max(0, wait))
        self._resume(ack)

    # ------------------------------------------------------------------
    # ULI receiver side
    # ------------------------------------------------------------------
    def deliver_uli_request(self, thief_core_id: int) -> None:
        """A steal request arrived at this core's one-entry buffer."""
        rejectable = (
            not self.uli_enabled
            or self._in_handler
            or self._pending_uli is not None
            or self.halted
            or self.uli_handler_factory is None
        )
        if rejectable:
            self.stats.add("uli_rejected")
            self._respond(thief_core_id, ack=False)
            return
        self._pending_uli = thief_core_id
        if self._uli_waiting:
            # The interrupted thread is blocked on its own ULI response:
            # no op boundary will occur, so take the interrupt immediately.
            self._resume_stack.append(_NO_RESULT)
            self._enter_handler()
        # Otherwise the handler starts at the next op boundary
        # (_on_complete, or the fused boundary check in _resume).

    def _can_enter_handler(self) -> bool:
        return (
            self._pending_uli is not None
            and self.uli_enabled
            and not self._in_handler
        )

    def trace_state(self, state: str) -> None:
        """Record a core-activity state transition (no-op when untraced)."""
        if self.tracer.enabled:
            self.tracer.core_state(self.core_id, self.sim.now, state)

    def _enter_handler(self) -> None:
        self._in_handler = True
        self._handler_entry_time = self.sim.now
        if self.tracer.enabled:
            self.tracer.push_state(self.core_id, self.sim.now, "uli-handler")
        thief = self._pending_uli
        self.stats.add("uli_handled")
        if self._ff is None:
            # Architectural count above is exact even during fast-forward;
            # cycle charges are timing and stay detailed-only.
            self.stats.add("cycles_uli", self.uli_entry_latency)
            self.stats.add("cycles_uli_handler", self.uli_entry_latency)
        if self._ckpt_log is not None:
            # Replay marker: a handler frame was pushed for this thief.
            self._ckpt_log.append(("h", self.core_id, thief))
        handler = self.uli_handler_factory(thief)
        self._frames.append(handler)
        self.sim.schedule(self.uli_entry_latency, self._resume_none_cont)

    def _finish_handler(self) -> Any:
        """Tear down a finished handler frame.

        Returns the value to resume the interrupted thread with, or
        ``_NO_RESULT`` when that thread is still blocked on its own ULI
        response (the caller must not step it).
        """
        thief = self._pending_uli
        self._pending_uli = None
        self._in_handler = False
        if self.tracer.enabled:
            self.tracer.pop_state(self.core_id, self.sim.now)
        self._respond(thief, ack=True)
        saved = self._resume_stack.pop()
        if saved is _NO_RESULT:
            # Back to waiting for our own ULI response; do not bill the
            # handler's cycles as wait time too.
            self._wait_handler_cycles += self.sim.now - self._handler_entry_time
            if self._deferred_uli_resp is not None:
                resp, self._deferred_uli_resp = self._deferred_uli_resp, None
                self.deliver_uli_response(resp)
            return _NO_RESULT
        return saved

    def _respond(self, thief_core_id: int, ack: bool) -> None:
        latency = self.uli_network.send_latency(self.core_id, thief_core_id)
        thief = self._peer(thief_core_id)
        # partial (not a closure) so an in-flight response is recognizable
        # and serializable by repro.engine.checkpoint.
        self.sim.schedule(latency, partial(thief.deliver_uli_response, ack))

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_peers(self, peers: List["Core"]) -> None:
        self._peers = peers

    def _peer(self, core_id: int) -> "Core":
        peers = self._peers
        if peers is None:
            raise SimulationError(
                f"core {self.core_id} is not attached to any peers "
                "(Machine must call attach_peers before ULI traffic)"
            )
        return peers[core_id]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def busy_cycles(self) -> int:
        return sum(
            self.stats.get(f"cycles_{cat}")
            for cat in TIME_CATEGORIES
            if cat != "idle"
        )

    def cycle_breakdown(self) -> dict:
        return {cat: self.stats.get(f"cycles_{cat}") for cat in TIME_CATEGORIES}
