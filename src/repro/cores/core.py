"""Core model: executes one hardware thread as a generator coroutine.

Two core flavours, matching the paper's Table II:

* **tiny** — single-issue in-order RV64GC-like core: ``Work(n)`` costs n
  cycles, memory latency is fully exposed.
* **big** — 4-way out-of-order core approximated with two parameters:
  ``issue_width`` divides compute cycles and ``mlp_factor`` scales the
  exposed portion of memory miss latency (modeling overlap from the
  128-entry ROB / 16-entry LSQ).

The core owns the ULI receive logic of Section IV: a one-entry request
buffer, enable/disable state, NACK when disabled/busy/halted, handler entry
latency (a few cycles on tiny cores, tens on big cores — in-flight
instructions must drain), and handler execution as a nested coroutine frame
on top of the interrupted thread.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Generator, List, Optional

from repro.cores import ops
from repro.engine.simulator import SimulationError, Simulator
from repro.engine.stats import StatGroup
from repro.trace.tracer import NULL_TRACER

#: Sentinel pushed on the resume stack when a handler interrupts a core
#: that is blocked waiting for its own ULI response (no value to deliver).
_NO_RESULT = object()

#: Stat categories for the Figure 7 execution-time breakdown.
TIME_CATEGORIES = (
    "compute",
    "load",
    "store",
    "amo",
    "flush",
    "invalidate",
    "uli",
    "idle",
)


class Core:
    """One core tile: coroutine executor + ULI receiver."""

    def __init__(
        self,
        core_id: int,
        sim: Simulator,
        l1,
        stats: StatGroup,
        is_big: bool = False,
        issue_width: int = 1,
        mlp_factor: float = 1.0,
        uli_network=None,
        uli_entry_latency: int = 5,
        tracer=NULL_TRACER,
    ):
        self.core_id = core_id
        self.sim = sim
        self.l1 = l1
        self.tracer = tracer
        self.is_big = is_big
        self.issue_width = max(1, issue_width)
        self.mlp_factor = mlp_factor
        self.uli_network = uli_network
        self.uli_entry_latency = uli_entry_latency
        self.stats = stats.child(f"core_{core_id}")

        self._frames: List[Generator] = []
        self._resume_stack: List[Any] = []
        self.halted = True

        # ULI receiver state.
        self.uli_enabled = False
        self._in_handler = False
        self._pending_uli: Optional[int] = None
        self._uli_waiting = False
        self._deferred_uli_resp: Optional[bool] = None
        self._uli_send_time = 0
        self._handler_entry_time = 0
        self._wait_handler_cycles = 0
        #: Set by the runtime: thief_id -> handler generator.
        self.uli_handler_factory: Optional[Callable[[int], Generator]] = None

    # ------------------------------------------------------------------
    # Thread startup
    # ------------------------------------------------------------------
    def start(self, thread: Generator, delay: int = 0) -> None:
        """Begin executing ``thread`` on this core."""
        if self._frames:
            raise SimulationError(f"core {self.core_id} already running a thread")
        self._frames.append(thread)
        self.halted = False
        self.sim.schedule(delay, lambda: self._step(None))

    # ------------------------------------------------------------------
    # Coroutine machinery
    # ------------------------------------------------------------------
    def _step(self, send_value: Any) -> None:
        frame = self._frames[-1]
        try:
            op = frame.send(send_value)
        except StopIteration:
            self._frames.pop()
            if self._in_handler and self._frames:
                self._finish_handler()
            elif not self._frames:
                self.halted = True
            return
        self._dispatch(op)

    def _charge_memory(self, latency: int) -> int:
        """Scale exposed memory latency for big cores (MLP overlap)."""
        if latency <= 1 or self.mlp_factor >= 1.0:
            return latency
        return 1 + max(0, math.ceil((latency - 1) * self.mlp_factor))

    def _dispatch(self, op: ops.Op) -> None:
        kind = op.KIND
        now = self.sim.now
        if kind == "work":
            latency = max(1, math.ceil(op.n / self.issue_width))
            self.stats.add("instructions", op.n)
            self._finish(kind, None, latency)
        elif kind == "idle":
            self._finish(kind, None, max(1, op.n))
        elif kind == "load":
            self.stats.add("instructions")
            if op.bypass:
                value, latency = self.l1.l2.read_word_bypass(self.core_id, op.addr, now)
            else:
                value, latency = self.l1.load(op.addr, now)
            self._finish(kind, value, self._charge_memory(latency))
        elif kind == "store":
            self.stats.add("instructions")
            latency = self.l1.store(op.addr, op.value, now)
            self._finish(kind, None, self._charge_memory(latency))
        elif kind == "amo":
            self.stats.add("instructions")
            old, latency = self.l1.amo(op.op, op.addr, op.operand, now)
            self._finish(kind, old, self._charge_memory(latency))
        elif kind == "invalidate":
            self.stats.add("instructions")
            latency = self.l1.invalidate_all(now)
            self._finish(kind, None, max(1, latency))
        elif kind == "flush":
            self.stats.add("instructions")
            latency = self.l1.flush_all(now)
            self._finish(kind, None, max(1, latency))
        elif kind == "uli_enable":
            self.stats.add("instructions")
            self.uli_enabled = True
            self._finish("compute", None, 1)
        elif kind == "uli_disable":
            self.stats.add("instructions")
            self.uli_enabled = False
            self._finish("compute", None, 1)
        elif kind == "uli_send":
            self.stats.add("instructions")
            self._send_uli(op.victim)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown op kind {kind!r}")

    def _finish(self, category: str, result: Any, latency: int) -> None:
        if category not in TIME_CATEGORIES:
            category = "compute"
        self.stats.add(f"cycles_{category}", latency)
        if self._in_handler:
            # Victim-side DTS cost (Section VI-C's "<1% of execution time").
            self.stats.add("cycles_uli_handler", latency)
        self.sim.schedule(latency, lambda: self._complete(result))

    def _complete(self, result: Any) -> None:
        """An operation finished: take a pending ULI first, else resume."""
        if self._can_enter_handler():
            self._resume_stack.append(result)
            self._enter_handler()
            return
        self._step(result)

    # ------------------------------------------------------------------
    # ULI sender side
    # ------------------------------------------------------------------
    def _send_uli(self, victim_core_id: int) -> None:
        if self.uli_network is None:
            raise SimulationError("ULI network not configured on this system")
        self.stats.add("uli_requests_sent")
        latency = self.uli_network.send_latency(self.core_id, victim_core_id)
        self._uli_waiting = True
        self._uli_send_time = self.sim.now
        victim = self._peer(victim_core_id)
        self.sim.schedule(latency, lambda: victim.deliver_uli_request(self.core_id))

    def deliver_uli_response(self, ack: bool) -> None:
        """Called (via event) when the victim's ACK/NACK arrives."""
        if self._in_handler:
            # We are servicing someone else's steal; hold our response.
            self._deferred_uli_resp = ack
            return
        self._uli_waiting = False
        self.stats.add("uli_acks" if ack else "uli_nacks")
        # Handler time spent while waiting was already charged per-op;
        # charge only the genuine wait here.
        wait = self.sim.now - self._uli_send_time - self._wait_handler_cycles
        self._wait_handler_cycles = 0
        self.stats.add("cycles_uli", max(0, wait))
        self._step(ack)

    # ------------------------------------------------------------------
    # ULI receiver side
    # ------------------------------------------------------------------
    def deliver_uli_request(self, thief_core_id: int) -> None:
        """A steal request arrived at this core's one-entry buffer."""
        rejectable = (
            not self.uli_enabled
            or self._in_handler
            or self._pending_uli is not None
            or self.halted
            or self.uli_handler_factory is None
        )
        if rejectable:
            self.stats.add("uli_rejected")
            self._respond(thief_core_id, ack=False)
            return
        self._pending_uli = thief_core_id
        if self._uli_waiting:
            # The interrupted thread is blocked on its own ULI response:
            # no op boundary will occur, so take the interrupt immediately.
            self._resume_stack.append(_NO_RESULT)
            self._enter_handler()
        # Otherwise the handler starts at the next op boundary (_complete).

    def _can_enter_handler(self) -> bool:
        return (
            self._pending_uli is not None
            and self.uli_enabled
            and not self._in_handler
        )

    def trace_state(self, state: str) -> None:
        """Record a core-activity state transition (no-op when untraced)."""
        if self.tracer.enabled:
            self.tracer.core_state(self.core_id, self.sim.now, state)

    def _enter_handler(self) -> None:
        self._in_handler = True
        self._handler_entry_time = self.sim.now
        if self.tracer.enabled:
            self.tracer.push_state(self.core_id, self.sim.now, "uli-handler")
        thief = self._pending_uli
        self.stats.add("uli_handled")
        self.stats.add("cycles_uli", self.uli_entry_latency)
        self.stats.add("cycles_uli_handler", self.uli_entry_latency)
        handler = self.uli_handler_factory(thief)
        self._frames.append(handler)
        self.sim.schedule(self.uli_entry_latency, lambda: self._step(None))

    def _finish_handler(self) -> None:
        thief = self._pending_uli
        self._pending_uli = None
        self._in_handler = False
        if self.tracer.enabled:
            self.tracer.pop_state(self.core_id, self.sim.now)
        self._respond(thief, ack=True)
        saved = self._resume_stack.pop()
        if saved is _NO_RESULT:
            # Back to waiting for our own ULI response; do not bill the
            # handler's cycles as wait time too.
            self._wait_handler_cycles += self.sim.now - self._handler_entry_time
            if self._deferred_uli_resp is not None:
                resp, self._deferred_uli_resp = self._deferred_uli_resp, None
                self.deliver_uli_response(resp)
            return
        self._step(saved)

    def _respond(self, thief_core_id: int, ack: bool) -> None:
        latency = self.uli_network.send_latency(self.core_id, thief_core_id)
        thief = self._peer(thief_core_id)
        self.sim.schedule(latency, lambda: thief.deliver_uli_response(ack))

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    _peers: List["Core"] = []

    def attach_peers(self, peers: List["Core"]) -> None:
        self._peers = peers

    def _peer(self, core_id: int) -> "Core":
        return self._peers[core_id]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def busy_cycles(self) -> int:
        return sum(
            self.stats.get(f"cycles_{cat}")
            for cat in TIME_CATEGORIES
            if cat != "idle"
        )

    def cycle_breakdown(self) -> dict:
        return {cat: self.stats.get(f"cycles_{cat}") for cat in TIME_CATEGORIES}
