"""Architectural operations yielded by simulated threads.

Runtime and application code runs as Python generators that ``yield`` these
operation objects; the owning :class:`repro.cores.core.Core` resolves each
against the memory system / ULI network and resumes the generator with the
result after the operation's latency has elapsed.

This is the simulator's "ISA": plain loads/stores/AMOs, compute work,
the software coherence instructions (``cache_invalidate``/``cache_flush``),
and the ULI primitives from Section IV of the paper.
"""

from __future__ import annotations

from typing import Any


class Op:
    KIND = "op"
    __slots__ = ()


class Work(Op):
    """``n`` ALU/control instructions (no memory access)."""

    KIND = "work"
    __slots__ = ("n",)

    def __init__(self, n: int):
        self.n = n


class Idle(Op):
    """``n`` cycles of idle/spin waiting (not counted as instructions)."""

    KIND = "idle"
    __slots__ = ("n",)

    def __init__(self, n: int):
        self.n = n


class Load(Op):
    """Word load; ``bypass`` skips the L1 (sync-class L2 read)."""

    KIND = "load"
    __slots__ = ("addr", "bypass")

    def __init__(self, addr: int, bypass: bool = False):
        self.addr = addr
        self.bypass = bypass


class Store(Op):
    KIND = "store"
    __slots__ = ("addr", "value")

    def __init__(self, addr: int, value: Any):
        self.addr = addr
        self.value = value


class Amo(Op):
    """Atomic read-modify-write; returns the old value."""

    KIND = "amo"
    __slots__ = ("op", "addr", "operand")

    def __init__(self, op: str, addr: int, operand: Any):
        self.op = op
        self.addr = addr
        self.operand = operand


class InvAll(Op):
    """``cache_invalidate``: drop potentially-stale clean data."""

    KIND = "invalidate"
    __slots__ = ()


class FlushAll(Op):
    """``cache_flush``: write back all dirty data."""

    KIND = "flush"
    __slots__ = ()


class UliSend(Op):
    """Send a ULI steal request to ``victim``; resumes with ACK True/False."""

    KIND = "uli_send"
    __slots__ = ("victim",)

    def __init__(self, victim: int):
        self.victim = victim


class UliEnable(Op):
    KIND = "uli_enable"
    __slots__ = ()


class UliDisable(Op):
    KIND = "uli_disable"
    __slots__ = ()


#: Shared instances of the stateless ops.  These classes carry no fields,
#: so yielding the same object from every call site is safe and saves one
#: allocation per architectural operation on the hot path.
INV_ALL = InvAll()
FLUSH_ALL = FlushAll()
ULI_ENABLE = UliEnable()
ULI_DISABLE = UliDisable()
