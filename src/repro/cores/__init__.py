"""Core models, thread contexts, and architectural operations."""

from repro.cores import ops
from repro.cores.context import ThreadContext
from repro.cores.core import TIME_CATEGORIES, Core

__all__ = ["Core", "ThreadContext", "ops", "TIME_CATEGORIES"]
