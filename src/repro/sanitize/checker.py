"""Opt-in coherence/runtime invariant checker (`repro.sanitize`).

The sanitizer is the machine-checked version of the coherence arguments
the paper's runtimes rely on.  It watches a running
:class:`~repro.machine.Machine` from two vantage points:

**Access hooks.**  ``install()`` wraps each L1's ``load``/``store``/
``amo``/``flush_all`` as *instance* attributes (shadowing the class
methods), so an un-sanitized machine pays nothing — not even a branch.
The hooks drive a *flush-discipline race detector* for HCC runtimes: a
store on a ``NEEDS_FLUSH`` protocol (GPU-WB) marks its word *unpublished*
until the writer flushes (or AMOs the word, which GPU-WB publishes
first).  Any other core that loads or AMOs an unpublished word raced a
write that is not yet globally visible — exactly the bug class a
forgotten ``cache_flush`` around a stolen task produces.  The
deliberately-broken ``break_coherence="no-thief-flush"`` runtime variant
exists as the positive control for this detector.  Evictions of dirty
lines do *not* publish their words here: the discipline requires an
explicit flush, and a correctly-synchronized program never reads a racing
word either way, so the conservative rule cannot false-positive.

**SWMR walks.**  A periodic simulator *daemon* event (plus a final walk
in ``finish()``) cross-checks every L1 tag array against the L2
directory: at most one owned (M/E/R) copy of a line system-wide, owned
copies match ``directory_entry().owner`` in both directions, MESI sharers
lists match resident SHARED copies, and untracked clean (V) lines carry
no dirty words unless the protocol is write-back (GPU-WB).  Daemon events
never perturb the simulated outcome (see ``repro.engine.simulator``), so
a sanitized run's cycle counts equal an unsanitized run's.

**Conservation.**  ``finish(runtime)`` additionally checks end-of-run
accounting: every spawned task executed exactly once, all deques are
empty, and no core still has ULI business pending.

Violations accumulate in :attr:`Sanitizer.violations` (each a JSON-able
dict); ``finish()`` raises :class:`SanitizerError` if any were found.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.engine.simulator import SimulationError
from repro.mem.address import word_addr
from repro.verify.invariants import OWNED_STATES, check_swmr_walk

#: L1 states that claim ownership of a line (single-writer states).
#: Re-exported from the shared invariant table (repro.verify.invariants):
#: the exhaustive checker and this sanitizer must agree on what "owned"
#: means, so there is exactly one definition.
_OWNED_STATES = OWNED_STATES


class SanitizerError(SimulationError):
    """One or more invariant violations were detected; see ``violations``."""

    def __init__(self, message: str, violations: Optional[List[dict]] = None):
        super().__init__(message)
        self.violations = violations or []

    def __reduce__(self):
        return (self.__class__, (self.args[0], self.violations))


class Sanitizer:
    """Invariant checker for one machine; create via ``Machine(sanitize=True)``."""

    def __init__(self, machine, interval: int = 4096, max_violations: int = 64):
        self.machine = machine
        #: Cycles between periodic SWMR walks (daemon events).
        self.interval = interval
        #: Stop recording (but keep checking cheaply) beyond this many.
        self.max_violations = max_violations
        #: JSON-able violation records, in detection order.
        self.violations: List[dict] = []
        self.stats = machine.stats.child("sanitizer")
        # word addr -> writer core id for words stored on a NEEDS_FLUSH
        # protocol and not yet made globally visible; the per-core index
        # makes flush_all O(dirty words of that core).
        self._unpublished: Dict[int, int] = {}
        self._by_core: Dict[int, Set[int]] = {}
        self._installed = False

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Wrap L1 hooks and arm the periodic SWMR walk daemon."""
        if self._installed:
            return
        self._installed = True
        for l1 in self.machine.l1s:
            self._wrap_l1(l1)
        self.machine.sim.schedule(self.interval, self._walk_tick, daemon=True)

    def _wrap_l1(self, l1) -> None:
        core_id = l1.core_id
        needs_flush = l1.NEEDS_FLUSH
        real_load, real_store = l1.load, l1.store
        real_amo, real_flush = l1.amo, l1.flush_all

        def load(addr, now):
            writer = self._unpublished.get(word_addr(addr))
            if writer is not None and writer != core_id:
                self._violation(
                    "unflushed-read",
                    f"core {core_id} loads {addr:#x} written by core {writer} "
                    "without an intervening flush",
                    addr=addr, reader=core_id, writer=writer,
                )
            return real_load(addr, now)

        def store(addr, value, now):
            word = word_addr(addr)
            writer = self._unpublished.get(word)
            if writer is not None and writer != core_id:
                self._violation(
                    "unflushed-overwrite",
                    f"core {core_id} stores to {addr:#x} while core {writer}'s "
                    "write is still unpublished",
                    addr=addr, reader=core_id, writer=writer,
                )
            if needs_flush:
                self._unpublished[word] = core_id
                self._by_core.setdefault(core_id, set()).add(word)
            return real_store(addr, value, now)

        def amo(op, addr, operand, now):
            word = word_addr(addr)
            writer = self._unpublished.get(word)
            if writer is not None:
                if writer != core_id:
                    self._violation(
                        "unflushed-amo",
                        f"core {core_id} AMOs {addr:#x} while core {writer}'s "
                        "write is still unpublished",
                        addr=addr, reader=core_id, writer=writer,
                    )
                # The AMO is performed at a coherence point (and GPU-WB
                # flushes its own dirty word first): the word is published.
                del self._unpublished[word]
                self._by_core.get(writer, set()).discard(word)
            return real_amo(op, addr, operand, now)

        def flush_all(now):
            published = self._by_core.get(core_id)
            if published:
                for word in published:
                    if self._unpublished.get(word) == core_id:
                        del self._unpublished[word]
                published.clear()
            return real_flush(now)

        l1.load, l1.store, l1.amo, l1.flush_all = load, store, amo, flush_all

    # ------------------------------------------------------------------
    # SWMR directory cross-check
    # ------------------------------------------------------------------
    def _walk_tick(self) -> None:
        self.check_now()
        self.machine.sim.schedule(self.interval, self._walk_tick, daemon=True)

    def check_now(self) -> int:
        """One full SWMR walk; returns the number of new violations.

        The walk itself lives in the shared invariant table
        (``repro.verify.invariants.check_swmr_walk``) so the exhaustive
        model checker enumerates exactly the invariants spot-checked here.
        """
        self.stats.add("walks")
        before = len(self.violations)
        machine = self.machine
        for record in check_swmr_walk(machine.l1s, machine.l2):
            details = dict(record)
            kind = details.pop("kind")
            message = details.pop("message")
            self._violation(kind, message, **details)
        return len(self.violations) - before

    # ------------------------------------------------------------------
    # End-of-run conservation checks
    # ------------------------------------------------------------------
    def finish(self, runtime=None, strict: bool = True) -> List[dict]:
        """Final walk + conservation checks; raises SanitizerError if strict."""
        self.check_now()
        if runtime is not None and not runtime.serial_elision and runtime.done:
            spawns = runtime.stats.get("spawns")
            executed = runtime.stats.get("tasks_executed")
            if executed != spawns + 1:  # +1: the root task is not a spawn
                self._violation(
                    "task-conservation",
                    f"{spawns} spawns + root but {executed} task executions",
                    spawns=spawns, executed=executed,
                )
            machine = self.machine
            for tid, dq in enumerate(runtime.deques):
                head = machine.host_read_word(dq.head_addr)
                tail = machine.host_read_word(dq.tail_addr)
                if head != tail:
                    self._violation(
                        "deque-not-drained",
                        f"deque {tid} ends with head={head} tail={tail}",
                        tid=tid, head=head, tail=tail,
                    )
            for core in machine.cores:
                if core._pending_uli is not None or core._in_handler or core._uli_waiting:
                    self._violation(
                        "pending-uli",
                        f"core {core.core_id} ends with ULI business pending",
                        core=core.core_id,
                    )
        if strict and self.violations:
            raise SanitizerError(
                f"{len(self.violations)} invariant violation(s); "
                f"first: {self.violations[0]['message']}",
                self.violations,
            )
        return self.violations

    # ------------------------------------------------------------------
    def _violation(self, kind: str, message: str, **details) -> None:
        self.stats.add("violations")
        self.stats.add(f"violations_{kind}")
        if len(self.violations) < self.max_violations:
            record = {"kind": kind, "cycle": self.machine.sim.now, "message": message}
            record.update(details)
            self.violations.append(record)
