"""Coherence/runtime invariant sanitizer (opt-in, zero overhead when off)."""

from repro.sanitize.checker import Sanitizer, SanitizerError

__all__ = ["Sanitizer", "SanitizerError"]
