"""CACTI-style L1 area model (Section V-A).

The paper uses CACTI to find that a big core's 64KB L1 is 14.9x the area of
a tiny core's 4KB L1, and from total L1 capacity argues that O3x8 is
area-equivalent to the 64-core big.TINY system.  We model SRAM array area
as a power law ``area = k * bytes^alpha`` with alpha calibrated so that the
64KB : 4KB ratio is exactly 14.9 (alpha = log(14.9)/log(16) ~= 0.974 —
slightly sub-linear, as peripheral circuitry amortizes with capacity).
"""

from __future__ import annotations

import math

from repro.config.system import SystemConfig

#: Calibration targets from the paper.
_RATIO = 14.9
_RATIO_CAPACITY = 16.0  # 64KB / 4KB
ALPHA = math.log(_RATIO) / math.log(_RATIO_CAPACITY)

#: Arbitrary normalization: the 4KB tiny L1 is 1.0 area units.
_K = 1.0 / (4096**ALPHA)


def l1_area(size_bytes: int) -> float:
    """Area of one L1 array in tiny-L1 units."""
    if size_bytes <= 0:
        raise ValueError("cache size must be positive")
    return _K * (size_bytes**ALPHA)


def core_l1_area(config: SystemConfig, core_id: int) -> float:
    """L1I + L1D area for one core (the paper sizes both equally)."""
    params = config.l1_params_for(core_id)
    return 2 * l1_area(params.size_bytes)


def system_l1_area(config: SystemConfig) -> float:
    """Total L1 area across all cores."""
    return sum(core_l1_area(config, c) for c in range(config.n_cores))


def big_to_tiny_ratio() -> float:
    """The calibrated 64KB:4KB single-array area ratio (paper: 14.9x)."""
    return l1_area(64 * 1024) / l1_area(4 * 1024)


def area_equivalence_report(config_a: SystemConfig, config_b: SystemConfig) -> dict:
    """Compare two systems' L1 area (the O3x8 vs big.TINY argument)."""
    area_a = system_l1_area(config_a)
    area_b = system_l1_area(config_b)
    return {
        "config_a": config_a.name,
        "config_b": config_b.name,
        "area_a": area_a,
        "area_b": area_b,
        "ratio": area_a / area_b,
    }
