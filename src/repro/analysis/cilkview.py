"""Cilkview-style work/span analysis (Section V-D, Table III).

Executes an application's task graph on a *functional* (un-timed) machine,
counting instructions along every strand and combining them over the
fork-join structure:

* **work**  — total instructions of all strands;
* **span**  — instructions on the critical path (at each fork-join, the
  parent continues after the longest child);
* **parallelism** — work / span;
* **IPT**   — average instructions per task (the granularity metric the
  paper tunes in Figure 4).

The analyzer duck-types the Machine/Runtime/ThreadContext interfaces, so
the exact same application code runs under it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.task import Task
from repro.mem.address import WORD_BYTES, AddressSpace
from repro.mem.amo import apply_amo


@dataclass
class WorkSpanReport:
    work: int
    span: int
    n_tasks: int

    @property
    def parallelism(self) -> float:
        return self.work / max(1, self.span)

    @property
    def instructions_per_task(self) -> float:
        return self.work / max(1, self.n_tasks)


class _FunctionalMemory:
    """Flat word-addressed memory with host accessors (machine duck-type)."""

    def __init__(self):
        self.address_space = AddressSpace()
        self._words: Dict[int, int] = {}

    def host_write_word(self, addr: int, value) -> None:
        self._words[addr] = value

    def host_write_array(self, base: int, values) -> None:
        for i, value in enumerate(values):
            self._words[base + i * WORD_BYTES] = value

    def host_read_word(self, addr: int):
        return self._words.get(addr, 0)

    def host_read_array(self, base: int, n_words: int) -> List:
        return [self.host_read_word(base + i * WORD_BYTES) for i in range(n_words)]


class _AnalysisContext:
    """ThreadContext duck-type that counts instructions instead of cycles."""

    def __init__(self, analyzer: "CilkviewAnalyzer"):
        self._an = analyzer
        self.tid = 0
        self.n_threads = 1

    # Memory ops: one instruction each, values from functional memory.
    def load(self, addr):
        self._an._count(1)
        return self._an.machine.host_read_word(addr)
        yield  # pragma: no cover

    def bypass_load(self, addr):
        return (yield from self.load(addr))

    def store(self, addr, value):
        self._an._count(1)
        self._an.machine.host_write_word(addr, value)
        return None
        yield  # pragma: no cover

    def amo(self, op, addr, operand):
        self._an._count(1)
        old = self._an.machine.host_read_word(addr)
        new, returned = apply_amo(op, old, operand)
        self._an.machine.host_write_word(addr, new)
        return returned
        yield  # pragma: no cover

    def cas(self, addr, expected, desired):
        return (yield from self.amo("cas", addr, (expected, desired)))

    def amo_add(self, addr, delta):
        return (yield from self.amo("add", addr, delta))

    def amo_sub(self, addr, delta):
        return (yield from self.amo("sub", addr, delta))

    def amo_or(self, addr, bits):
        return (yield from self.amo("or", addr, bits))

    def amo_min(self, addr, value):
        return (yield from self.amo("min", addr, value))

    def work(self, n):
        if n > 0:
            self._an._count(n)
        return None
        yield  # pragma: no cover

    def idle(self, n):
        return None
        yield  # pragma: no cover

    # Coherence/ULI ops are runtime artifacts: free under analysis.
    def cache_invalidate(self):
        return None
        yield  # pragma: no cover

    def cache_flush(self):
        return None
        yield  # pragma: no cover

    def uli_enable(self):
        return None
        yield  # pragma: no cover

    def uli_disable(self):
        return None
        yield  # pragma: no cover


class CilkviewAnalyzer:
    """Functional executor computing work/span over the fork-join DAG.

    Presents the WorkStealingRuntime duck-type (``fork_join``, ``spawn``,
    ``wait``, ``run_inline``, ``machine``) to task code.
    """

    def __init__(self):
        self.machine = _FunctionalMemory()
        self._work = 0  # instructions on the current strand (running total)
        self._span = 0  # critical path up to the current point
        self.n_tasks = 0
        self.variant = "analysis"

    # ------------------------------------------------------------------
    def analyze(self, root: Task) -> WorkSpanReport:
        ctx = _AnalysisContext(self)
        self._run_generator(self.run_inline(ctx, root))
        return WorkSpanReport(work=self._work, span=self._span, n_tasks=self.n_tasks)

    # ------------------------------------------------------------------
    # Runtime duck-type
    # ------------------------------------------------------------------
    def fork_join(self, ctx, parent: Task, children: List[Task]):
        if not children:
            return
        base_work = self._work
        base_span = self._span
        child_metrics = []
        for child in children:
            child.parent = parent
            self._register(child)
            self._work = 0
            self._span = 0
            yield from self._run_task(ctx, child)
            child_metrics.append((self._work, self._span))
        total_child_work = sum(w for w, _ in child_metrics)
        longest_child_span = max(s for _, s in child_metrics)
        self._work = base_work + total_child_work
        self._span = base_span + longest_child_span

    def run_inline(self, ctx, task: Task):
        self._register(task)
        yield from self._run_task(ctx, task)

    def spawn(self, ctx, task: Task):  # pragma: no cover - apps use fork_join
        raise NotImplementedError("CilkviewAnalyzer only supports fork_join")
        yield

    def _run_task(self, ctx, task: Task):
        self.n_tasks += 1
        self._count(4)  # task start overhead, mirroring the real runtime
        yield from task.execute(self, ctx)

    def _register(self, task: Task) -> None:
        task.task_id = self.n_tasks + 1
        task.desc_addr = self.machine.address_space.alloc_words(
            2 + task.ARG_WORDS, f"task_{task.task_id}"
        )

    # ------------------------------------------------------------------
    def _count(self, n: int) -> None:
        self._work += n
        self._span += n

    def _run_generator(self, gen) -> None:
        """Drive a task generator functionally.

        Context methods (``ctx.load`` etc.) resolve without yielding, but
        hot-path app code (``SimArray`` accessors, the throughput kernels)
        yields ``repro.cores.ops`` objects directly; those are applied to
        the functional memory here.
        """
        try:
            op = next(gen)
            while True:
                op = gen.send(self._apply_op(op))
        except StopIteration:
            return

    def _apply_op(self, op):
        """Execute one raw architectural op against functional memory."""
        kind = op.KIND
        mem = self.machine
        if kind == "load":
            self._count(1)
            return mem.host_read_word(op.addr)
        if kind == "store":
            self._count(1)
            mem.host_write_word(op.addr, op.value)
            return None
        if kind == "amo":
            self._count(1)
            old = mem.host_read_word(op.addr)
            new, returned = apply_amo(op.op, old, op.operand)
            mem.host_write_word(op.addr, new)
            return returned
        if kind == "work":
            self._count(op.n)
            return None
        # idle / coherence / ULI ops are runtime artifacts: free here.
        return None
