"""Analysis tools: Cilkview work/span, CACTI-style area, energy model."""

from repro.analysis.area import (
    area_equivalence_report,
    big_to_tiny_ratio,
    l1_area,
    system_l1_area,
)
from repro.analysis.cilkview import CilkviewAnalyzer, WorkSpanReport
from repro.analysis.energy import DEFAULT_ENERGY_PJ, EnergyReport, estimate_energy

__all__ = [
    "CilkviewAnalyzer",
    "WorkSpanReport",
    "l1_area",
    "system_l1_area",
    "big_to_tiny_ratio",
    "area_equivalence_report",
    "estimate_energy",
    "EnergyReport",
    "DEFAULT_ENERGY_PJ",
]
