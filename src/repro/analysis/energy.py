"""Activity-based energy model.

The paper reports that the best HCC+DTS configuration reaches "similar
energy efficiency" to full hardware coherence; its energy argument is
driven by activity counts (cache accesses, network traffic, DRAM accesses)
rather than circuit-level simulation.  This model does the same: each event
class carries a fixed energy (rough 28nm-class numbers in picojoules), and
a system's energy is the weighted sum of its counters.

The absolute joules are not meaningful; ratios between configurations are
the reproduced quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.machine import Machine

#: Event energies in picojoules (order-of-magnitude literature values).
DEFAULT_ENERGY_PJ = {
    "tiny_core_cycle": 2.0,
    "big_core_cycle": 25.0,
    "idle_cycle_factor": 0.15,  # clock-gated fraction of active energy
    "l1_access": 5.0,
    "l2_access": 25.0,
    "dram_access": 2000.0,
    "noc_byte_hop": 0.8,
    "uli_message": 4.0,
}


@dataclass
class EnergyReport:
    total_pj: float
    breakdown_pj: Dict[str, float] = field(default_factory=dict)

    def ratio_to(self, other: "EnergyReport") -> float:
        return self.total_pj / max(1e-12, other.total_pj)


def energy_counts(machine: Machine) -> Dict[str, float]:
    """Raw activity counts the energy model is a linear function of.

    Split out from :func:`estimate_energy` so the sampled-simulation
    estimator (repro.sampling) can delta these counts over detailed
    windows and extrapolate them before pricing — the coefficients apply
    to counts, not to machines.
    """
    tiny_busy = big_busy = tiny_idle = big_idle = 0
    for core in machine.cores:
        busy = core.busy_cycles()
        idle = core.stats.get("cycles_idle")
        if core.is_big:
            big_busy += busy
            big_idle += idle
        else:
            tiny_busy += busy
            tiny_idle += idle
    l1_accesses = 0
    for l1 in machine.l1s:
        l1_accesses += (
            l1.stats.get("loads") + l1.stats.get("stores") + l1.stats.get("amos")
        )
    return {
        "tiny_busy_cycles": tiny_busy,
        "big_busy_cycles": big_busy,
        "tiny_idle_cycles": tiny_idle,
        "big_idle_cycles": big_idle,
        "l1_accesses": l1_accesses,
        "l2_accesses": (
            machine.l2.stats.get("accesses") + machine.l2.stats.get("writebacks")
        ),
        "dram_accesses": sum(mc.stats.get("accesses") for mc in machine.l2.dram),
        "noc_byte_hops": machine.traffic.total_byte_hops(),
        "uli_messages": machine.stats.child("uli_network").get("messages"),
    }


def energy_from_counts(
    counts: Dict[str, float], coefficients: Dict[str, float] = None
) -> EnergyReport:
    """Price a set of activity counts (see :func:`energy_counts`)."""
    c = dict(DEFAULT_ENERGY_PJ)
    if coefficients:
        c.update(coefficients)
    breakdown: Dict[str, float] = {}

    # Core energy: active cycles at full rate, idle cycles clock-gated.
    breakdown["cores"] = (
        counts["tiny_busy_cycles"] * c["tiny_core_cycle"]
        + counts["big_busy_cycles"] * c["big_core_cycle"]
        + counts["tiny_idle_cycles"] * c["tiny_core_cycle"] * c["idle_cycle_factor"]
        + counts["big_idle_cycles"] * c["big_core_cycle"] * c["idle_cycle_factor"]
    )
    # L1 energy: every load/store/AMO touches the array once.
    breakdown["l1"] = counts["l1_accesses"] * c["l1_access"]
    breakdown["l2"] = counts["l2_accesses"] * c["l2_access"]
    breakdown["dram"] = counts["dram_accesses"] * c["dram_access"]
    # NoC energy: proportional to byte-hops.
    breakdown["noc"] = counts["noc_byte_hops"] * c["noc_byte_hop"]
    breakdown["uli"] = counts["uli_messages"] * c["uli_message"]

    return EnergyReport(total_pj=sum(breakdown.values()), breakdown_pj=breakdown)


def estimate_energy(machine: Machine, coefficients: Dict[str, float] = None) -> EnergyReport:
    """Estimate the energy of a completed simulation on ``machine``."""
    return energy_from_counts(energy_counts(machine), coefficients)
