"""Activity-based energy model.

The paper reports that the best HCC+DTS configuration reaches "similar
energy efficiency" to full hardware coherence; its energy argument is
driven by activity counts (cache accesses, network traffic, DRAM accesses)
rather than circuit-level simulation.  This model does the same: each event
class carries a fixed energy (rough 28nm-class numbers in picojoules), and
a system's energy is the weighted sum of its counters.

The absolute joules are not meaningful; ratios between configurations are
the reproduced quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.machine import Machine

#: Event energies in picojoules (order-of-magnitude literature values).
DEFAULT_ENERGY_PJ = {
    "tiny_core_cycle": 2.0,
    "big_core_cycle": 25.0,
    "idle_cycle_factor": 0.15,  # clock-gated fraction of active energy
    "l1_access": 5.0,
    "l2_access": 25.0,
    "dram_access": 2000.0,
    "noc_byte_hop": 0.8,
    "uli_message": 4.0,
}


@dataclass
class EnergyReport:
    total_pj: float
    breakdown_pj: Dict[str, float] = field(default_factory=dict)

    def ratio_to(self, other: "EnergyReport") -> float:
        return self.total_pj / max(1e-12, other.total_pj)


def estimate_energy(machine: Machine, coefficients: Dict[str, float] = None) -> EnergyReport:
    """Estimate the energy of a completed simulation on ``machine``."""
    c = dict(DEFAULT_ENERGY_PJ)
    if coefficients:
        c.update(coefficients)
    breakdown: Dict[str, float] = {}

    # Core energy: active cycles at full rate, idle cycles clock-gated.
    core_pj = 0.0
    for core in machine.cores:
        per_cycle = c["big_core_cycle"] if core.is_big else c["tiny_core_cycle"]
        busy = core.busy_cycles()
        idle = core.stats.get("cycles_idle")
        core_pj += busy * per_cycle + idle * per_cycle * c["idle_cycle_factor"]
    breakdown["cores"] = core_pj

    # L1 energy: every load/store/AMO touches the array once.
    l1_accesses = 0
    for l1 in machine.l1s:
        l1_accesses += (
            l1.stats.get("loads") + l1.stats.get("stores") + l1.stats.get("amos")
        )
    breakdown["l1"] = l1_accesses * c["l1_access"]

    # L2 energy.
    l2_accesses = machine.l2.stats.get("accesses") + machine.l2.stats.get("writebacks")
    breakdown["l2"] = l2_accesses * c["l2_access"]

    # DRAM energy.
    dram_accesses = sum(mc.stats.get("accesses") for mc in machine.l2.dram)
    breakdown["dram"] = dram_accesses * c["dram_access"]

    # NoC energy: proportional to byte-hops.
    breakdown["noc"] = machine.traffic.total_byte_hops() * c["noc_byte_hop"]

    # ULI network energy.
    uli_messages = machine.stats.child("uli_network").get("messages")
    breakdown["uli"] = uli_messages * c["uli_message"]

    return EnergyReport(total_pj=sum(breakdown.values()), breakdown_pj=breakdown)
