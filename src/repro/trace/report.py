"""Per-core activity-breakdown text report from a recorded trace.

Mirrors the paper's time-resolved analysis (Section VI): for every core,
the fraction of elapsed cycles spent running tasks, attempting steals,
waiting at joins, idling after failed steals, and servicing ULI handlers.
This is the textual companion to the Perfetto view — the same state spans,
aggregated.
"""

from __future__ import annotations

from typing import List

from repro.trace.tracer import CORE_STATES, Tracer

#: Printing order: the known states first, then anything novel.
_STATE_ORDER = {state: i for i, state in enumerate(CORE_STATES)}


def format_activity_report(tracer: Tracer) -> str:
    """Render the per-core activity breakdown as an aligned text table."""
    totals = tracer.state_totals()
    elapsed = max(1, tracer.final_cycle)
    states: List[str] = sorted(
        {state for per_core in totals.values() for state in per_core},
        key=lambda s: (_STATE_ORDER.get(s, len(_STATE_ORDER)), s),
    )
    lines = [
        f"per-core activity breakdown over {tracer.final_cycle} cycles "
        f"(% of elapsed time)"
    ]
    header = f"{'core':<16}" + "".join(f"{state:>14}" for state in states)
    lines.append(header)
    lines.append("-" * len(header))
    for core_id in sorted(totals):
        label = tracer.core_labels.get(core_id, f"core {core_id}")
        row = f"{label:<16}"
        for state in states:
            cycles = totals[core_id].get(state, 0)
            row += f"{100.0 * cycles / elapsed:>13.1f}%"
        lines.append(row)
    if tracer.steals:
        lines.append("")
        lines.append(
            f"steals: {len(tracer.steals)}   "
            f"uli messages: {len(tracer.uli_messages)}   "
            f"inv/flush bursts: {len(tracer.mem_bursts)}   "
            f"interval samples: {len(tracer.samples)}"
        )
    return "\n".join(lines)
