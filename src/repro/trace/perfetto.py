"""Chrome trace-event (Perfetto-loadable) export of a recorded trace.

Produces the JSON object format of the Trace Event spec understood by
https://ui.perfetto.dev and ``chrome://tracing``:

* pid 0 ``core activity`` — one thread track per core carrying the
  running-task / steal-attempt / waiting / idle / uli-handler state spans
  (``ph: "X"`` complete events) plus instant events for L1 invalidate and
  flush bursts.
* pid 1 ``tasks`` — one thread track per core carrying task-lifecycle
  spans (nested ``ph: "X"`` events; the nesting mirrors fork/join depth).
* flow events (``ph: "s"`` / ``ph: "f"``) drawing a thief→victim arrow for
  every successful steal and every ULI message.
* pid 2 ``counters`` — ``ph: "C"`` counter tracks derived from the
  interval sampler (tiny L1 hit rate, NoC traffic, steals, instructions)
  and from the DRAM controllers (queueing delay).

Timestamps are simulated *cycles* written into the microsecond ``ts``
field — Perfetto's time axis then reads directly in cycles.

The export is deterministic: events derive only from simulated state, are
emitted in a fixed order, and are serialized with sorted keys and fixed
separators, so identical runs produce byte-identical files.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.trace.tracer import Tracer

PID_CORES = 0
PID_TASKS = 1
PID_COUNTERS = 2

#: Counter-track definitions derived from interval samples: name -> list of
#: (key-substring, kind) selectors summed over the sampled stat deltas.
_PHASES = ("B", "E", "X", "i", "I", "s", "t", "f", "C", "M", "b", "e", "n")


def _sum_matching(delta: Dict[str, float], *substrings: str) -> float:
    total = 0
    for key, value in delta.items():
        if any(s in key for s in substrings):
            total += value
    return total


def _counter_events(tracer: Tracer) -> List[dict]:
    """Per-interval counter tracks (Figure 6/8-style signals over time)."""
    events: List[dict] = []

    def counter(name: str, cycle: int, value) -> None:
        events.append({
            "ph": "C",
            "pid": PID_COUNTERS,
            "tid": 0,
            "name": name,
            "ts": cycle,
            "args": {"value": round(value, 6) if isinstance(value, float) else value},
        })

    for cycle, delta in tracer.samples:
        l1 = {key: value for key, value in delta.items() if ".l1d_" in key}
        accesses = _sum_matching(l1, ".loads", ".stores")
        hits = _sum_matching(l1, ".load_hits", ".store_hits")
        if accesses:
            counter("l1 hit rate", cycle, hits / accesses)
        counter("traffic bytes", cycle, _sum_matching(delta, "traffic."))
        counter("steals", cycle, _sum_matching(delta, "runtime.steals"))
        counter("instructions", cycle, _sum_matching(delta, ".instructions"))
        counter(
            "lines inv+flush",
            cycle,
            _sum_matching(delta, ".lines_invalidated", ".lines_flushed"),
        )
    for controller_id, cycle, queue_cycles in tracer.dram_samples:
        counter(f"dram{controller_id} queue cycles", cycle, queue_cycles)
    return events


def chrome_trace_events(tracer: Tracer) -> List[dict]:
    """The full, deterministic trace-event list for ``tracer``."""
    events: List[dict] = []
    core_ids = sorted(
        {cid for cid, _s, _e, _st in tracer.state_spans}
        | {cid for cid, _s, _e, _t, _n in tracer.task_spans}
        | set(tracer.core_labels)
    )

    # -- metadata: name the processes and per-core threads ---------------
    for pid, pname in ((PID_CORES, "core activity"), (PID_TASKS, "tasks"),
                       (PID_COUNTERS, "counters")):
        events.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": pname},
        })
        events.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_sort_index",
            "args": {"sort_index": pid},
        })
    for cid in core_ids:
        label = tracer.core_labels.get(cid, f"core {cid}")
        for pid in (PID_CORES, PID_TASKS):
            events.append({
                "ph": "M", "pid": pid, "tid": cid, "name": "thread_name",
                "args": {"name": label},
            })
            events.append({
                "ph": "M", "pid": pid, "tid": cid, "name": "thread_sort_index",
                "args": {"sort_index": cid},
            })

    # -- core activity state spans ---------------------------------------
    for cid, start, end, state in tracer.state_spans:
        events.append({
            "ph": "X", "pid": PID_CORES, "tid": cid, "name": state,
            "cat": "core_state", "ts": start, "dur": end - start,
        })

    # -- task lifecycle spans --------------------------------------------
    for cid, start, end, task_id, name in tracer.task_spans:
        events.append({
            "ph": "X", "pid": PID_TASKS, "tid": cid, "name": name,
            "cat": "task", "ts": start, "dur": end - start,
            "args": {"task_id": task_id},
        })

    # -- steal flow edges (victim -> thief: the task moves) --------------
    for n, (thief, victim, task_id, start, end, kind) in enumerate(tracer.steals):
        common = {"cat": "steal", "name": f"steal:{kind}", "id": n, "pid": PID_CORES}
        events.append({"ph": "s", "tid": victim, "ts": start,
                       "args": {"task_id": task_id}, **common})
        events.append({"ph": "f", "bp": "e", "tid": thief, "ts": end,
                       "args": {"task_id": task_id}, **common})

    # -- ULI message flows ------------------------------------------------
    for n, (src, dst, cycle, latency) in enumerate(tracer.uli_messages):
        common = {"cat": "uli", "name": "uli", "id": len(tracer.steals) + n,
                  "pid": PID_CORES}
        events.append({"ph": "s", "tid": src, "ts": cycle, **common})
        events.append({"ph": "f", "bp": "e", "tid": dst, "ts": cycle + latency,
                       **common})

    # -- L1 invalidate/flush bursts as instants on the core track --------
    for cid, cycle, kind, lines, latency in tracer.mem_bursts:
        events.append({
            "ph": "i", "s": "t", "pid": PID_CORES, "tid": cid,
            "name": f"{kind} burst", "cat": "mem", "ts": cycle,
            "args": {"lines": lines, "latency": latency},
        })

    # -- checkpoint marks as global instants ------------------------------
    for cycle in getattr(tracer, "checkpoints", ()):
        events.append({
            "ph": "i", "s": "g", "pid": PID_CORES, "tid": 0,
            "name": "checkpoint", "cat": "checkpoint", "ts": cycle,
        })

    events.extend(_counter_events(tracer))
    return events


def export_chrome_trace(tracer: Tracer, path: Optional[str] = None) -> str:
    """Serialize ``tracer`` to Chrome trace-event JSON text (optionally
    writing it to ``path``).  Deterministic byte-for-byte."""
    obj = {
        "displayTimeUnit": "ms",
        "metadata": dict(sorted(tracer.meta.items())),
        "otherData": {"clock": "simulated-cycles", "final_cycle": tracer.final_cycle},
        "traceEvents": chrome_trace_events(tracer),
    }
    text = json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"
    if path is not None:
        with open(path, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(text)
    return text


# ----------------------------------------------------------------------
# Schema validation (used by tests and the CI trace-smoke job)
# ----------------------------------------------------------------------
def validate_chrome_trace(obj) -> List[dict]:
    """Check ``obj`` against the trace-event JSON object format.

    Returns the event list on success; raises ``ValueError`` describing the
    first problem otherwise.  Intentionally strict about the fields the
    Perfetto importer relies on.
    """
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        raise ValueError("trace must be a JSON object with a traceEvents array")
    events = obj["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty array")
    open_flows = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event #{i} is not an object")
        ph = event.get("ph")
        if ph not in _PHASES:
            raise ValueError(f"event #{i} has unknown phase {ph!r}")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                raise ValueError(f"event #{i} ({ph}) lacks integer {field!r}")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"event #{i} ({ph}) has bad ts {ts!r}")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"event #{i} ({ph}) lacks a name")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event #{i} (X) has bad dur {dur!r}")
        if ph == "C" and not isinstance(event.get("args"), dict):
            raise ValueError(f"event #{i} (C) lacks args")
        if ph == "s":
            open_flows[event.get("id")] = i
        if ph == "f" and event.get("id") not in open_flows:
            raise ValueError(f"event #{i} (f) finishes unknown flow id")
    return events


def validate_trace_file(path: str) -> int:
    """Validate a trace file on disk; returns the number of events."""
    with open(path, "r", encoding="utf-8") as fh:
        obj = json.load(fh)
    return len(validate_chrome_trace(obj))
