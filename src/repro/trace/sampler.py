"""Interval statistics sampler: StatGroup deltas every N cycles.

The end-of-run aggregates in ``StatGroup`` explain *how much* happened but
not *when*; the sampler turns them into a time series by snapshotting a
flat statistics view every ``interval`` simulated cycles and recording the
delta since the previous snapshot.  The resulting series feeds the Chrome
trace counter tracks (hit rate, traffic, steals per interval), the CSV
export below, and any number of additional *sinks* — callables invoked
with every ``(cycle, delta)`` pair — so consumers (JSONL export, the
metrics registry in ``repro.obs.metrics``, a future sweep server) no
longer have to pose as tracers.

Scheduling: the sampler rides the simulation's own event queue as *daemon*
events (``Simulator.schedule(..., daemon=True)``), which never keep the run
loop alive or advance the clock past the last real event.  Sampler
callbacks read statistics and touch nothing else, so a sampled run is
cycle-for-cycle identical to an unsampled one — asserted by
``tests/test_trace.py``.

Completeness invariant: the recorded deltas *telescope* — their per-key
sum equals end-of-run totals minus the baseline.  ``finalize`` therefore
always flushes the tail window, merging into the last sample when a daemon
tick already fired at the final cycle but regular events at that same
cycle mutated counters afterwards (daemon events run *before* regular
events at the same cycle, so a same-cycle tick can be stale).
"""

from __future__ import annotations

import io
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.engine.simulator import Simulator
from repro.engine.stats import StatGroup
from repro.trace.tracer import NULL_TRACER, NullTracer

Snapshot = Dict[str, Union[int, float]]

#: A sample consumer: called as ``sink(cycle, delta)`` for every sample.
Sink = Callable[[int, Snapshot], None]


class IntervalSampler:
    """Snapshot a statistics source every ``interval`` cycles.

    ``source`` is either a :class:`StatGroup` (sampled via ``snapshot()``)
    or any zero-argument callable returning a flat ``{name: number}`` dict
    (e.g. ``MetricsRegistry.collect``).  Deltas are kept in
    :attr:`samples` and forwarded to every registered sink; the ``tracer``
    argument is kept as a convenience for the original consumer and simply
    becomes the first sink.
    """

    def __init__(
        self,
        sim: Simulator,
        source: Union[StatGroup, Callable[[], Snapshot]],
        interval: int,
        tracer: NullTracer = NULL_TRACER,
    ):
        if interval < 1:
            raise ValueError(f"sample interval must be >= 1 cycle, got {interval}")
        self.sim = sim
        self.interval = interval
        self._snapshot = source.snapshot if isinstance(source, StatGroup) else source
        #: (cycle, {stat: delta}) — only stats that changed in the interval.
        self.samples: List[Tuple[int, Snapshot]] = []
        self._prev: Optional[Snapshot] = None
        self._sinks: List[Sink] = []
        if tracer is not NULL_TRACER:
            self._sinks.append(tracer.counter_sample)

    def add_sink(self, sink: Sink) -> "IntervalSampler":
        """Register an additional ``(cycle, delta)`` consumer."""
        self._sinks.append(sink)
        return self

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Take the baseline snapshot and schedule the first tick."""
        self._prev = self._snapshot()
        self.sim.schedule(self.interval, self._tick, daemon=True)

    def finalize(self) -> None:
        """Flush the tail window so no deltas are silently dropped.

        Three cases:

        * no tick fired at the final cycle — record a closing sample
          (also guarantees at least one sample for runs shorter than one
          interval, so counter tracks and CSVs are never empty);
        * a tick fired at the final cycle but regular events at that same
          cycle changed counters after it (daemons run first within a
          cycle) — merge the residue into that last sample and re-emit
          only the residue to sinks, keeping both the sample list and the
          sink stream telescoping to the end-of-run totals;
        * the last tick already saw the final state — nothing to do.
        """
        if self._prev is None:
            self._prev = self._snapshot()
        if not self.samples or self.samples[-1][0] != self.sim.now:
            self._record(self.sim.now)
            return
        residue = self._delta()
        if not residue:
            return
        cycle, last = self.samples[-1]
        merged = dict(last)
        for key, value in residue.items():
            merged[key] = merged.get(key, 0) + value
        self.samples[-1] = (cycle, merged)
        for sink in self._sinks:
            sink(cycle, residue)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self._record(self.sim.now)
        # Daemon events never keep the run alive, so re-arming is always
        # safe: an unexecuted tick is simply left in the queue at the end.
        self.sim.schedule(self.interval, self._tick, daemon=True)

    def _delta(self) -> Snapshot:
        """Changed-stats delta since the previous snapshot; advances it."""
        snap = self._snapshot()
        prev = self._prev
        delta = {
            key: value - prev.get(key, 0)
            for key, value in snap.items()
            if value != prev.get(key, 0)
        }
        self._prev = snap
        return delta

    def _record(self, cycle: int) -> None:
        delta = self._delta()
        self.samples.append((cycle, delta))
        for sink in self._sinks:
            sink(cycle, delta)


def samples_to_csv(samples: List[Tuple[int, Snapshot]]) -> str:
    """Serialize interval samples to CSV: one row per tick, one column per
    statistic that changed at least once (sorted, so output is stable)."""
    columns: List[str] = sorted({key for _cycle, delta in samples for key in delta})
    buffer = io.StringIO()
    buffer.write(",".join(["cycle"] + columns) + "\n")
    for cycle, delta in samples:
        row = [str(cycle)]
        for key in columns:
            value = delta.get(key, 0)
            row.append(f"{value:.6g}" if isinstance(value, float) else str(value))
        buffer.write(",".join(row) + "\n")
    return buffer.getvalue()
