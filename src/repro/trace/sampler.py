"""Interval statistics sampler: StatGroup deltas every N cycles.

The end-of-run aggregates in ``StatGroup`` explain *how much* happened but
not *when*; the sampler turns them into a time series by snapshotting a
flat statistics view every ``interval`` simulated cycles and recording the
delta since the previous snapshot.  The resulting series feeds the Chrome
trace counter tracks (hit rate, traffic, steals per interval) and the CSV
export below.

Scheduling: the sampler rides the simulation's own event queue as *daemon*
events (``Simulator.schedule(..., daemon=True)``), which never keep the run
loop alive or advance the clock past the last real event.  Sampler
callbacks read statistics and touch nothing else, so a sampled run is
cycle-for-cycle identical to an unsampled one — asserted by
``tests/test_trace.py``.
"""

from __future__ import annotations

import io
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.engine.simulator import Simulator
from repro.engine.stats import StatGroup
from repro.trace.tracer import NULL_TRACER, NullTracer

Snapshot = Dict[str, Union[int, float]]


class IntervalSampler:
    """Snapshot a statistics source every ``interval`` cycles.

    ``source`` is either a :class:`StatGroup` (sampled via ``snapshot()``)
    or any zero-argument callable returning a flat ``{name: number}`` dict
    (e.g. one that merges in ``TrafficMeter.snapshot()``).  Deltas are
    forwarded to ``tracer.counter_sample`` and kept in :attr:`samples`.
    """

    def __init__(
        self,
        sim: Simulator,
        source: Union[StatGroup, Callable[[], Snapshot]],
        interval: int,
        tracer: NullTracer = NULL_TRACER,
    ):
        if interval < 1:
            raise ValueError(f"sample interval must be >= 1 cycle, got {interval}")
        self.sim = sim
        self.interval = interval
        self.tracer = tracer
        self._snapshot = source.snapshot if isinstance(source, StatGroup) else source
        #: (cycle, {stat: delta}) — only stats that changed in the interval.
        self.samples: List[Tuple[int, Snapshot]] = []
        self._prev: Optional[Snapshot] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Take the baseline snapshot and schedule the first tick."""
        self._prev = self._snapshot()
        self.sim.schedule(self.interval, self._tick, daemon=True)

    def finalize(self) -> None:
        """Record a closing sample at the current cycle (if not yet taken).

        Guarantees at least one sample even for runs shorter than one
        interval, so counter tracks and CSVs are never empty.
        """
        if self._prev is None:
            self._prev = self._snapshot()
        if not self.samples or self.samples[-1][0] != self.sim.now:
            self._record(self.sim.now)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self._record(self.sim.now)
        # Daemon events never keep the run alive, so re-arming is always
        # safe: an unexecuted tick is simply left in the queue at the end.
        self.sim.schedule(self.interval, self._tick, daemon=True)

    def _record(self, cycle: int) -> None:
        snap = self._snapshot()
        prev = self._prev
        delta = {
            key: value - prev.get(key, 0)
            for key, value in snap.items()
            if value != prev.get(key, 0)
        }
        self._prev = snap
        self.samples.append((cycle, delta))
        self.tracer.counter_sample(cycle, delta)


def samples_to_csv(samples: List[Tuple[int, Snapshot]]) -> str:
    """Serialize interval samples to CSV: one row per tick, one column per
    statistic that changed at least once (sorted, so output is stable)."""
    columns: List[str] = sorted({key for _cycle, delta in samples for key in delta})
    buffer = io.StringIO()
    buffer.write(",".join(["cycle"] + columns) + "\n")
    for cycle, delta in samples:
        row = [str(cycle)]
        for key in columns:
            value = delta.get(key, 0)
            row.append(f"{value:.6g}" if isinstance(value, float) else str(value))
        buffer.write(",".join(row) + "\n")
    return buffer.getvalue()
