"""Cycle-accurate tracing and profiling of simulated runs.

Collection (:mod:`repro.trace.tracer`), interval sampling
(:mod:`repro.trace.sampler`), Chrome trace-event / Perfetto export
(:mod:`repro.trace.perfetto`), and text reporting
(:mod:`repro.trace.report`).  Enable by passing a :class:`Tracer` to
``repro.harness.run_experiment`` or via ``python -m repro trace``.
"""

from repro.trace.perfetto import (
    chrome_trace_events,
    export_chrome_trace,
    validate_chrome_trace,
    validate_trace_file,
)
from repro.trace.report import format_activity_report
from repro.trace.sampler import IntervalSampler, samples_to_csv
from repro.trace.tracer import CORE_STATES, NULL_TRACER, NullTracer, Tracer

__all__ = [
    "CORE_STATES",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "IntervalSampler",
    "samples_to_csv",
    "chrome_trace_events",
    "export_chrome_trace",
    "validate_chrome_trace",
    "validate_trace_file",
    "format_activity_report",
]
