"""Cycle-accurate event tracer for the simulated system.

The tracer is the collection side of ``repro.trace``: instrumented
components (cores, the work-stealing runtime, the ULI network, the L1
caches, the DRAM controllers) call into it with *cycle-stamped* events and
it accumulates them as plain tuples.  Exporters (``repro.trace.perfetto``,
``repro.trace.sampler``) turn the accumulated events into Chrome
trace-event JSON, CSV time series, and text reports.

Two implementations share one interface:

* :class:`NullTracer` — the default everywhere.  Every hook is a no-op and
  ``enabled`` is False, so instrumented hot paths pay at most one attribute
  load and a branch.  The module-level :data:`NULL_TRACER` singleton is the
  instance components default to.
* :class:`Tracer` — records everything.  Install one by passing it to
  :class:`repro.machine.Machine` (or ``run_experiment(tracer=...)``).

Determinism: events carry only simulated state (cycles, core ids, task
ids), never wall-clock time or object identities, so two runs of the same
configuration and seed accumulate identical event streams and the
exporters emit byte-identical files.  This property is asserted by
``tests/test_trace.py``.

Core *states* form a per-core stack: :meth:`Tracer.core_state` replaces
the state at the top of the stack (closing the previous span), while
:meth:`Tracer.push_state` / :meth:`Tracer.pop_state` bracket nested
activity such as ULI handlers that interrupt whatever the core was doing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Core activity states emitted by the runtime and the cores (the paper's
#: time-resolved story: which cores were busy, stealing, waiting, idle).
CORE_STATES = (
    "running-task",
    "steal-attempt",
    "waiting",
    "idle",
    "uli-handler",
)


class NullTracer:
    """Do-nothing tracer; the near-zero-cost default for untraced runs.

    Components keep a reference to a tracer and guard heavier
    instrumentation with ``if tracer.enabled:``; with this class that is a
    single attribute test, and un-guarded calls are empty methods.
    """

    enabled = False

    # -- core activity -------------------------------------------------
    def core_state(self, core_id: int, cycle: int, state: str) -> None:
        pass

    def push_state(self, core_id: int, cycle: int, state: str) -> None:
        pass

    def pop_state(self, core_id: int, cycle: int) -> None:
        pass

    # -- task lifecycle ------------------------------------------------
    def task_begin(self, core_id: int, cycle: int, task_id: int, name: str) -> None:
        pass

    def task_end(self, core_id: int, cycle: int) -> None:
        pass

    # -- steal edges ---------------------------------------------------
    def steal(
        self,
        thief: int,
        victim: int,
        task_id: int,
        start_cycle: int,
        end_cycle: int,
        kind: str,
    ) -> None:
        pass

    # -- ULI fabric ----------------------------------------------------
    def uli_message(self, src: int, dst: int, cycle: int, latency: int) -> None:
        pass

    # -- memory system -------------------------------------------------
    def mem_burst(
        self, core_id: int, cycle: int, kind: str, lines: int, latency: int
    ) -> None:
        pass

    def dram_sample(self, controller_id: int, cycle: int, queue_cycles: int) -> None:
        pass

    # -- fault injection -----------------------------------------------
    def fault(self, site: str, cycle: int, detail: int) -> None:
        pass

    # -- interval sampling ---------------------------------------------
    def counter_sample(self, cycle: int, deltas: Dict[str, float]) -> None:
        pass

    # -- checkpointing -------------------------------------------------
    def checkpoint_mark(self, cycle: int) -> None:
        pass

    # -- lifecycle -----------------------------------------------------
    def finish(self, cycle: int) -> None:
        pass


#: Shared default instance: components reference this when no tracer is
#: installed, so untraced simulations never allocate tracer state.
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """Recording tracer: accumulates cycle-stamped events as plain tuples."""

    enabled = True

    def __init__(self):
        #: (core_id, start, end, state) closed core-activity spans.
        self.state_spans: List[Tuple[int, int, int, str]] = []
        #: (core_id, start, end, task_id, name) closed task spans.
        self.task_spans: List[Tuple[int, int, int, int, str]] = []
        #: (thief, victim, task_id, start, end, kind) successful steals.
        self.steals: List[Tuple[int, int, int, int, int, str]] = []
        #: (src, dst, cycle, latency) ULI messages.
        self.uli_messages: List[Tuple[int, int, int, int]] = []
        #: (core_id, cycle, kind, lines, latency) invalidate/flush bursts.
        self.mem_bursts: List[Tuple[int, int, str, int, int]] = []
        #: (controller_id, cycle, queue_cycles) DRAM queueing samples.
        self.dram_samples: List[Tuple[int, int, int]] = []
        #: (site, cycle, detail) injected faults (repro.faults).
        self.faults: List[Tuple[str, int, int]] = []
        #: (cycle, {stat: delta}) interval-sampler output.
        self.samples: List[Tuple[int, Dict[str, float]]] = []
        #: Cycles at which the checkpoint daemon took a snapshot.
        self.checkpoints: List[int] = []
        #: Experiment metadata set by the harness (app, kind, scale, ...).
        self.meta: Dict[str, object] = {}
        #: core_id -> display label ("core 0 (big)"), set by the harness.
        self.core_labels: Dict[int, str] = {}
        self.final_cycle = 0
        # core_id -> [(state, since), ...]: the open state-span stack.
        self._state: Dict[int, List[Tuple[str, int]]] = {}
        # core_id -> [(task_id, name, start), ...]: open (nested) tasks.
        self._open_tasks: Dict[int, List[Tuple[int, str, int]]] = {}

    # ------------------------------------------------------------------
    # Core activity states
    # ------------------------------------------------------------------
    def core_state(self, core_id: int, cycle: int, state: str) -> None:
        """Transition ``core_id`` to ``state`` at ``cycle`` (flat change)."""
        stack = self._state.setdefault(core_id, [])
        if not stack:
            stack.append((state, cycle))
            return
        prev, since = stack[-1]
        if prev == state:
            return
        if cycle > since:
            self.state_spans.append((core_id, since, cycle, prev))
        stack[-1] = (state, cycle)

    def push_state(self, core_id: int, cycle: int, state: str) -> None:
        """Interrupt the current state (e.g. a ULI handler entry)."""
        stack = self._state.setdefault(core_id, [])
        if stack:
            prev, since = stack[-1]
            if cycle > since:
                self.state_spans.append((core_id, since, cycle, prev))
            stack[-1] = (prev, cycle)
        stack.append((state, cycle))

    def pop_state(self, core_id: int, cycle: int) -> None:
        """Return from an interrupting state to whatever was below it."""
        stack = self._state.get(core_id)
        if not stack:
            return
        state, since = stack.pop()
        if cycle > since:
            self.state_spans.append((core_id, since, cycle, state))
        if stack:
            prev, _ = stack[-1]
            stack[-1] = (prev, cycle)

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------
    def task_begin(self, core_id: int, cycle: int, task_id: int, name: str) -> None:
        self._open_tasks.setdefault(core_id, []).append((task_id, name, cycle))

    def task_end(self, core_id: int, cycle: int) -> None:
        open_tasks = self._open_tasks.get(core_id)
        if not open_tasks:
            return
        task_id, name, start = open_tasks.pop()
        self.task_spans.append((core_id, start, cycle, task_id, name))

    # ------------------------------------------------------------------
    # Point / edge events
    # ------------------------------------------------------------------
    def steal(self, thief, victim, task_id, start_cycle, end_cycle, kind) -> None:
        self.steals.append((thief, victim, task_id, start_cycle, end_cycle, kind))

    def uli_message(self, src, dst, cycle, latency) -> None:
        self.uli_messages.append((src, dst, cycle, latency))

    def mem_burst(self, core_id, cycle, kind, lines, latency) -> None:
        self.mem_bursts.append((core_id, cycle, kind, lines, latency))

    def dram_sample(self, controller_id, cycle, queue_cycles) -> None:
        self.dram_samples.append((controller_id, cycle, queue_cycles))

    def fault(self, site, cycle, detail) -> None:
        self.faults.append((site, cycle, detail))

    def counter_sample(self, cycle, deltas) -> None:
        self.samples.append((cycle, deltas))

    def checkpoint_mark(self, cycle) -> None:
        self.checkpoints.append(cycle)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def set_meta(self, **meta) -> None:
        self.meta.update(meta)

    def finish(self, cycle: int) -> None:
        """Close every open span at the end of the simulation."""
        self.final_cycle = max(self.final_cycle, cycle)
        for core_id in sorted(self._state):
            stack = self._state[core_id]
            while stack:
                state, since = stack.pop()
                if cycle > since:
                    self.state_spans.append((core_id, since, cycle, state))
        for core_id in sorted(self._open_tasks):
            open_tasks = self._open_tasks[core_id]
            while open_tasks:
                task_id, name, start = open_tasks.pop()
                self.task_spans.append((core_id, start, cycle, task_id, name))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def state_totals(self) -> Dict[int, Dict[str, int]]:
        """Per-core cycles spent in each activity state (closed spans)."""
        totals: Dict[int, Dict[str, int]] = {}
        for core_id, start, end, state in self.state_spans:
            per_core = totals.setdefault(core_id, {})
            per_core[state] = per_core.get(state, 0) + (end - start)
        return totals

    def n_events(self) -> int:
        return (
            len(self.state_spans)
            + len(self.task_spans)
            + len(self.steals)
            + len(self.uli_messages)
            + len(self.mem_bursts)
            + len(self.dram_samples)
            + len(self.faults)
            + len(self.samples)
            + len(self.checkpoints)
        )
