#!/usr/bin/env python
"""Graph analytics on a big.TINY manycore: BFS and connected components.

Runs two Ligra-style kernels over an R-MAT graph on three machines —
full-hardware MESI, heterogeneous coherence with GPU-WB tiny cores, and
the same HCC machine with Direct Task Stealing — and reports cycles,
tiny-core L1 hit rate, steal counts, and on-chip traffic.

This is the workload class the paper's introduction motivates: irregular,
fine-grained synchronization (compare-and-swap on parent/label arrays),
dynamic load imbalance across BFS rounds.

Run:  python examples/graph_analytics.py
"""

from repro import Machine, WorkStealingRuntime, make_config
from repro.apps import make_app

KINDS = ("bt-mesi", "bt-hcc-gwb", "bt-hcc-dts-gwb")
APPS = (
    ("ligra-bfs", dict(scale=8, grain=8)),
    ("ligra-cc", dict(scale=8, grain=8)),
)


def run(app_name: str, params: dict, kind: str):
    app = make_app(app_name, **params)
    machine = Machine(make_config(kind, "quick"))
    app.setup(machine)
    runtime = WorkStealingRuntime(machine)
    cycles = runtime.run(app.make_root())
    app.check()  # validate against a pure-Python reference
    tiny = machine.tiny_core_ids()
    return {
        "cycles": cycles,
        "hit_rate": machine.l1_hit_rate(tiny),
        "steals": runtime.stats.get("steals"),
        "traffic_kb": machine.traffic.total_bytes() / 1024.0,
        "flushed": machine.aggregate_l1_stats(tiny)["lines_flushed"],
    }


def main() -> None:
    for app_name, params in APPS:
        graph_size = 1 << params["scale"]
        print(f"\n{app_name} on an rMat graph with {graph_size} vertices:")
        print(f"  {'config':18s} {'cycles':>9s} {'L1 hit':>7s} {'steals':>7s} "
              f"{'traffic':>9s} {'flushes':>8s}")
        baseline = None
        for kind in KINDS:
            stats = run(app_name, params, kind)
            baseline = baseline or stats["cycles"]
            print(
                f"  {kind:18s} {stats['cycles']:>9d} "
                f"{stats['hit_rate']:>6.1%} {stats['steals']:>7d} "
                f"{stats['traffic_kb']:>7.1f}KB {stats['flushed']:>8d}"
                f"   ({baseline / stats['cycles']:.2f}x vs MESI)"
            )


if __name__ == "__main__":
    main()
