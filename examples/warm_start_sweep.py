#!/usr/bin/env python
"""Warm-start fan-out: one init phase shared by every configuration.

A sweep over N coherence configurations re-runs each application's serial
init phase (input generation, graph construction, host-side memory
writes) N times, even though that phase is identical for every
configuration.  ``run_grid(checkpoint_dir=..., warm_init=True)`` instead
captures the post-``setup`` machine image once per application
(``repro.engine.checkpoint.capture_init_state``) and restores it for
every configuration variant.

This demo runs the paper's seven big.TINY configurations over three
applications twice — cold, then warm-started — and verifies that

* the warm sweep restored the shared init image for at least 2/3 of the
  simulations (apps whose setup consumes the machine RNG legitimately
  cold-start), and
* every result is identical to the cold sweep's, field by field
  (checkpoint provenance lives only in ``result.extras``).

Run with ``--scale quick`` for the 16-core shape (a few minutes) or the
default ``tiny`` for a smoke-sized proof.
"""

import argparse
import dataclasses
import sys
import tempfile

from repro.harness import clear_cache, expand_grid, run_grid

APPS = ("cilk5-cs", "cilk5-mt", "ligra-bfs")
KINDS = (
    "bt-mesi",
    "bt-hcc-dnv",
    "bt-hcc-gwt",
    "bt-hcc-gwb",
    "bt-hcc-dts-dnv",
    "bt-hcc-dts-gwt",
    "bt-hcc-dts-gwb",
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="tiny")
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()

    points = expand_grid(APPS, KINDS, (args.scale,))
    print(f"sweep: {len(APPS)} apps x {len(KINDS)} configs @ {args.scale}")

    cold = run_grid(points, jobs=args.jobs)
    clear_cache()  # force the warm sweep to actually simulate

    with tempfile.TemporaryDirectory(prefix="repro-warm-") as ckpt_dir:
        warm = run_grid(points, jobs=args.jobs,
                        checkpoint_dir=ckpt_dir, warm_init=True)

    warm_started = sum(1 for r in warm if "ckpt_warm_start" in r.extras)
    print(f"init phase skipped for {warm_started}/{len(points)} simulations")
    if warm_started < 2 * len(points) / 3:
        print("FAIL: warm start engaged for fewer than 2/3 of the sweep")
        return 1

    mismatches = 0
    for point, c, w in zip(points, cold, warm):
        a, b = dataclasses.asdict(c), dataclasses.asdict(w)
        a.pop("extras"), b.pop("extras")
        if a != b:
            mismatches += 1
            print(f"FAIL: {point.label()} diverged under warm start")
    if mismatches:
        return 1
    print("warm-started results identical to the cold sweep")
    return 0


if __name__ == "__main__":
    sys.exit(main())
