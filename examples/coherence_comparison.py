#!/usr/bin/env python
"""Compare the four coherence protocols on one kernel, microscope view.

Runs blocked matrix transpose (the paper's worst case for reader-initiated
invalidation) on big.TINY machines whose tiny cores use MESI, DeNovo,
GPU-WT, and GPU-WB, with and without Direct Task Stealing, and prints the
protocol-level counters that explain the performance differences:
invalidated lines, flushed lines, AMO counts, hit rates, and the Figure 8
traffic categories.

Run:  python examples/coherence_comparison.py
"""

from repro import Machine, WorkStealingRuntime, make_config
from repro.apps import make_app

CONFIGS = (
    "bt-mesi",
    "bt-hcc-dnv",
    "bt-hcc-gwt",
    "bt-hcc-gwb",
    "bt-hcc-dts-dnv",
    "bt-hcc-dts-gwt",
    "bt-hcc-dts-gwb",
)


def run(kind: str):
    app = make_app("cilk5-mt", n=64, grain=8)
    machine = Machine(make_config(kind, "quick"))
    app.setup(machine)
    runtime = WorkStealingRuntime(machine)
    cycles = runtime.run(app.make_root())
    app.check()
    tiny = machine.tiny_core_ids()
    agg = machine.aggregate_l1_stats(tiny)
    return {
        "cycles": cycles,
        "protocol": machine.l1s[tiny[0]].PROTOCOL,
        "variant": runtime.variant,
        "hit_rate": machine.l1_hit_rate(tiny),
        "invalidated": agg["lines_invalidated"],
        "flushed": agg["lines_flushed"],
        "amos": agg["amos"],
        "traffic": machine.traffic.snapshot(),
    }


def main() -> None:
    print("cilk5-mt (64x64 transpose) across coherence configurations:\n")
    header = (
        f"{'config':18s} {'proto':8s} {'rt':4s} {'cycles':>8s} {'L1 hit':>7s} "
        f"{'inv.lines':>9s} {'flushed':>8s} {'AMOs':>6s} {'wb_req B':>9s}"
    )
    print(header)
    print("-" * len(header))
    baseline = None
    for kind in CONFIGS:
        stats = run(kind)
        baseline = baseline or stats["cycles"]
        print(
            f"{kind:18s} {stats['protocol']:8s} {stats['variant']:4s} "
            f"{stats['cycles']:>8d} {stats['hit_rate']:>6.1%} "
            f"{stats['invalidated']:>9d} {stats['flushed']:>8d} "
            f"{stats['amos']:>6d} {stats['traffic']['wb_req']:>9d}"
        )
    print(
        "\nReading guide (Section VI of the paper):\n"
        " * MESI needs no invalidations/flushes — hardware keeps caches coherent.\n"
        " * DeNovo/GPU-* invalidate the whole private cache around every deque\n"
        "   access (Figure 3b), which costs hit rate.\n"
        " * GPU-WB additionally flushes dirty data at spawns/steals (wb_req).\n"
        " * DTS configurations make deques private: invalidations and flushes\n"
        "   collapse to the (rare) actual steals, recovering the losses."
    )


if __name__ == "__main__":
    main()
