#!/usr/bin/env python
"""Writing your own task-parallel application against the public API.

Implements a parallel dot-product from scratch: data lives in simulated
memory (every element access is a real cache access in the model), leaves
accumulate partial sums, and a single AMO per leaf publishes into a global
accumulator — the standard reduction recipe on machines where atomics may
execute at the shared cache.

Demonstrates:
 * allocating simulated arrays,
 * a custom ``Task`` subclass,
 * ``parallel_for`` with a grain size,
 * running the same program on several coherence configurations and
   validating the result.

Run:  python examples/custom_application.py
"""

from repro import Machine, Task, WorkStealingRuntime, make_config, parallel_for
from repro.engine.rng import XorShift64
from repro.mem.address import WORD_BYTES


class DotProduct(Task):
    """sum(a[i] * b[i]) with a tree reduction over leaf partial sums."""

    ARG_WORDS = 3

    def __init__(self, a_base: int, b_base: int, n: int, out_addr: int, grain: int):
        super().__init__()
        self.a_base = a_base
        self.b_base = b_base
        self.n = n
        self.out_addr = out_addr
        self.grain = grain

    def execute(self, rt, ctx):
        def body(rt, ctx, lo, hi):
            partial = 0
            for i in range(lo, hi):
                a = yield from ctx.load(self.a_base + i * WORD_BYTES)
                b = yield from ctx.load(self.b_base + i * WORD_BYTES)
                yield from ctx.work(2)  # multiply-accumulate
                partial += a * b
            # One atomic per leaf: correct on every protocol, including the
            # GPU ones where AMOs execute at the shared L2.
            yield from ctx.amo_add(self.out_addr, partial)

        yield from parallel_for(rt, ctx, 0, self.n, body, self.grain)


def main() -> None:
    n, grain = 1024, 64
    rng = XorShift64(2026)
    a_values = [rng.randint(0, 100) for _ in range(n)]
    b_values = [rng.randint(0, 100) for _ in range(n)]
    expected = sum(x * y for x, y in zip(a_values, b_values))

    print(f"parallel dot product, n={n}, grain={grain}, expected={expected}\n")
    for kind in ("o3x1", "bt-mesi", "bt-hcc-gwt", "bt-hcc-dts-gwb"):
        machine = Machine(make_config(kind, "quick"))
        a_base = machine.address_space.alloc_words(n, "a")
        b_base = machine.address_space.alloc_words(n, "b")
        out = machine.address_space.alloc_words(1, "out")
        machine.host_write_array(a_base, a_values)
        machine.host_write_array(b_base, b_values)
        machine.host_write_word(out, 0)

        runtime = WorkStealingRuntime(machine)
        cycles = runtime.run(DotProduct(a_base, b_base, n, out, grain))
        result = machine.host_read_word(out)
        status = "OK " if result == expected else "BAD"
        print(
            f"  [{status}] {kind:16s} result={result} cycles={cycles:>7d} "
            f"tasks={runtime.stats.get('tasks_executed'):>3d} "
            f"steals={runtime.stats.get('steals'):>3d}"
        )
        assert result == expected


if __name__ == "__main__":
    main()
