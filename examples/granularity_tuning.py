#!/usr/bin/env python
"""Task granularity tuning (the paper's Section V-D / Figure 4 methodology).

Sweeps the task granularity of ligra-tc (edges per task) and, for each
granularity, reports the Cilkview-style logical parallelism / IPT from the
functional analyzer alongside the measured speedup on a simulated big.TINY
machine — the hybrid simulation-native approach the paper uses to pick the
Table III grain sizes.

Run:  python examples/granularity_tuning.py
"""

from repro import Machine, WorkStealingRuntime, make_config
from repro.analysis import CilkviewAnalyzer
from repro.apps import make_app

GRAINS = (4, 8, 16, 32, 64, 128)
SCALE_LOG2 = 7  # 128-vertex rMat graph


def analyze(grain: int):
    app = make_app("ligra-tc", scale=SCALE_LOG2, grain=grain)
    analyzer = CilkviewAnalyzer()
    app.setup(analyzer.machine)
    report = analyzer.analyze(app.make_root())
    app.check()
    return report


def simulate(grain: int, serial: bool = False) -> int:
    app = make_app("ligra-tc", scale=SCALE_LOG2, grain=grain)
    machine = Machine(make_config("bt-mesi", "quick"))
    app.setup(machine)
    runtime = WorkStealingRuntime(machine, serial_elision=serial)
    cycles = runtime.run(app.make_root())
    app.check()
    return cycles


def main() -> None:
    serial_cycles = simulate(GRAINS[-1], serial=True)
    print("ligra-tc granularity sweep (paper Figure 4):\n")
    header = (
        f"{'grain':>6s} {'work':>8s} {'span':>7s} {'parallelism':>12s} "
        f"{'IPT':>8s} {'tasks':>6s} {'cycles':>8s} {'speedup':>8s}"
    )
    print(header)
    print("-" * len(header))
    for grain in GRAINS:
        report = analyze(grain)
        cycles = simulate(grain)
        print(
            f"{grain:>6d} {report.work:>8d} {report.span:>7d} "
            f"{report.parallelism:>12.1f} {report.instructions_per_task:>8.1f} "
            f"{report.n_tasks:>6d} {cycles:>8d} {serial_cycles / cycles:>7.2f}x"
        )
    print(
        "\nBoth extremes lose: tiny grains maximize logical parallelism but "
        "drown in runtime\noverhead; huge grains starve the cores. The paper "
        "picks each kernel's grain at the\nspeedup knee (Table III's GS column)."
    )


if __name__ == "__main__":
    main()
