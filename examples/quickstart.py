#!/usr/bin/env python
"""Quickstart: run a task-parallel program on a simulated big.TINY system.

This is the paper's Figure 2 example — recursive Fibonacci with
``fork_join`` (spawn + wait) — executed on a 16-core big.TINY machine with
GPU-WB heterogeneous cache coherence and Direct Task Stealing, then
compared against the serial elision on one in-order core.

Run:  python examples/quickstart.py
"""

from repro import Machine, Task, WorkStealingRuntime, make_config
from repro.mem.address import WORD_BYTES


class FibTask(Task):
    """Figure 2(a) of the paper: fib with explicit spawn/wait.

    Below ``CUTOFF`` the task computes serially — the granularity control
    every real task-parallel program applies (Section V-D): spawning a task
    per fib(1) leaf would drown the runtime in overhead.
    """

    ARG_WORDS = 2
    CUTOFF = 10

    def __init__(self, n: int, out_addr: int):
        super().__init__()
        self.n = n
        self.out_addr = out_addr

    def execute(self, rt, ctx):
        if self.n < self.CUTOFF:
            result, cost = self._serial_fib(self.n)
            yield from ctx.work(cost)
            yield from ctx.store(self.out_addr, result)
            return
        scratch = rt.machine.address_space.alloc_words(2, "fib_scratch")
        children = [
            FibTask(self.n - 1, scratch),
            FibTask(self.n - 2, scratch + WORD_BYTES),
        ]
        yield from rt.fork_join(ctx, self, children)  # spawn both, wait
        x = yield from ctx.load(scratch)
        y = yield from ctx.load(scratch + WORD_BYTES)
        yield from ctx.store(self.out_addr, x + y)

    @staticmethod
    def _serial_fib(n: int):
        """Returns (fib(n), instruction count of the naive recursion)."""
        if n < 2:
            return n, 2
        a, cost_a = FibTask._serial_fib(n - 1)
        b, cost_b = FibTask._serial_fib(n - 2)
        return a + b, cost_a + cost_b + 3


def run(kind: str, n: int, serial: bool = False) -> tuple:
    machine = Machine(make_config(kind, "quick"))
    runtime = WorkStealingRuntime(machine, serial_elision=serial)
    out = machine.address_space.alloc_words(1, "out")
    cycles = runtime.run(FibTask(n, out))
    return machine.host_read_word(out), cycles, runtime


def main() -> None:
    n = 21
    result, serial_cycles, _ = run("serial-io", n, serial=True)
    assert result == 10946
    print(f"serial elision on one in-order core: fib({n}) = {result} "
          f"in {serial_cycles} cycles")

    for kind in ("bt-mesi", "bt-hcc-gwb", "bt-hcc-dts-gwb"):
        result, cycles, runtime = run(kind, n)
        assert result == 10946
        print(
            f"{kind:16s}: {cycles:>8d} cycles "
            f"(speedup {serial_cycles / cycles:5.2f}x, "
            f"variant={runtime.variant}, "
            f"tasks={runtime.stats.get('tasks_executed')}, "
            f"steals={runtime.stats.get('steals')})"
        )


if __name__ == "__main__":
    main()
