"""Regenerates Figure 7: aggregated tiny-core execution-time breakdown,
normalized to big.TINY/MESI."""

from repro.cores.core import TIME_CATEGORIES
from repro.harness import fig7_breakdown, format_stacked

from conftest import print_block


def test_fig7_execution_time_breakdown(benchmark, scale):
    data = benchmark.pedantic(fig7_breakdown, args=(scale,), rounds=1, iterations=1)
    print_block(
        format_stacked("Figure 7: tiny-core time breakdown (normalized to MESI)",
                       data, TIME_CATEGORIES)
    )

    flush_heavy = 0
    for app, per_kind in data.items():
        assert sum(per_kind["bt-mesi"].values()) > 0.99  # normalization anchor
        # MESI never executes flush/invalidate stall cycles.
        assert per_kind["bt-mesi"]["flush"] == 0.0
        assert per_kind["bt-mesi"]["invalidate"] == 0.0
        # GPU-WB without DTS spends real time flushing; DTS removes most.
        if per_kind["bt-hcc-gwb"]["flush"] > per_kind["bt-hcc-dts-gwb"]["flush"]:
            flush_heavy += 1
    assert flush_heavy >= len(data) * 0.6
