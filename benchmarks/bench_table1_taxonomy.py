"""Regenerates Table I: the cache coherence protocol taxonomy."""

from repro.harness import format_table1, table1_taxonomy

from conftest import print_block


def test_table1_taxonomy(benchmark):
    rows = benchmark.pedantic(table1_taxonomy, rounds=1, iterations=1)
    print_block(format_table1(rows))
    protocols = {r["protocol"]: r for r in rows}
    # Table I invariants.
    assert protocols["mesi"]["invalidation"] == "writer"
    assert all(
        protocols[p]["invalidation"] == "reader" for p in ("denovo", "gpu-wt", "gpu-wb")
    )
    assert protocols["denovo"]["dirty_propagation"] == "owner-wb"
    assert protocols["gpu-wt"]["dirty_propagation"] == "noowner-wt"
    assert protocols["gpu-wb"]["dirty_propagation"] == "noowner-wb"
    assert protocols["gpu-wb"]["needs_flush"]
