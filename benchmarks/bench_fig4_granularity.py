"""Regenerates Figure 4: speedup and logical parallelism of ligra-tc as a
function of task granularity (edges per task)."""

from repro.harness import fig4_granularity, format_fig4

from conftest import print_block

GRAINS = (4, 8, 16, 32, 64, 128)


def test_fig4_granularity_sweep(benchmark, scale):
    rows = benchmark.pedantic(
        fig4_granularity,
        args=(scale,),
        kwargs=dict(app_name="ligra-tc", grains=GRAINS),
        rounds=1,
        iterations=1,
    )
    print_block(format_fig4(rows))

    # Paper Figure 4: logical parallelism decreases monotonically with
    # granularity; speedup peaks at a middle granularity (too-small grains
    # pay runtime overhead, too-large grains starve the cores).
    paras = [r["parallelism"] for r in rows]
    assert all(a >= b * 0.95 for a, b in zip(paras, paras[1:]))
    speedups = [r["speedup_vs_serial"] for r in rows]
    best = max(range(len(GRAINS)), key=lambda i: speedups[i])
    assert speedups[best] >= speedups[-1]  # the largest grain is not optimal
