"""Architectural sensitivity studies (beyond the paper's main matrix).

Three single-parameter sweeps on a representative kernel, of the kind an
architecture paper's rebuttal inevitably asks for:

* tiny-core L1 capacity (the paper fixes 4KB = 1/16 of a big core's L1);
* DRAM bandwidth (the paper's 16GB/s scaled-down budget);
* the big-core memory-level-parallelism factor of our OoO approximation.

Each sweep asserts basic monotonicity/sanity rather than absolute numbers.
"""

from repro.config.system import CacheParams
from repro.harness import run_experiment

from conftest import print_block

APP = "ligra-bfs"
KIND = "bt-hcc-dts-gwb"


def test_tiny_l1_capacity_sensitivity(benchmark, scale):
    sizes = (2048, 4096, 8192, 16384)

    def collect():
        out = {}
        for size in sizes:
            res = run_experiment(
                APP, KIND, scale,
                config_overrides={"tiny_l1": CacheParams(size, 2)},
            )
            out[size] = (res.cycles, res.l1_hit_rate_tiny)
        return out

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    lines = [f"Tiny L1 capacity sweep on {APP} ({KIND}):"]
    for size, (cycles, hit) in table.items():
        lines.append(f"  {size // 1024:>3d}KB  cycles={cycles:>9d}  L1 hit={hit:.3f}")
    print_block("\n".join(lines))

    hits = [table[s][1] for s in sizes]
    # Hit rate never degrades as the cache grows.
    assert all(b >= a - 0.02 for a, b in zip(hits, hits[1:]))
    # The largest cache is at least as fast as the smallest (within noise).
    assert table[sizes[-1]][0] <= table[sizes[0]][0] * 1.15


def test_dram_bandwidth_sensitivity(benchmark, scale):
    bandwidths = (2.0, 8.0, 32.0)

    def collect():
        return {
            bw: run_experiment(
                APP, "bt-mesi", scale,
                config_overrides={"dram_total_bytes_per_cycle": bw},
            ).cycles
            for bw in bandwidths
        }

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    lines = [f"DRAM bandwidth sweep on {APP} (bt-mesi):"]
    for bw, cycles in table.items():
        lines.append(f"  {bw:>5.1f} B/cycle  cycles={cycles:>9d}")
    print_block("\n".join(lines))
    # More bandwidth never hurts (monotone within 5% noise).
    cycles = [table[bw] for bw in bandwidths]
    assert all(b <= a * 1.05 for a, b in zip(cycles, cycles[1:]))


def test_big_core_mlp_sensitivity(benchmark, scale):
    factors = (1.0, 0.6, 0.2)

    def collect():
        return {
            f: run_experiment(
                "cilk5-cs", "o3x1", scale,
                config_overrides={"big_mlp_factor": f},
            ).cycles
            for f in factors
        }

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    lines = ["Big-core MLP factor sweep on cilk5-cs (o3x1):"]
    for f, cycles in table.items():
        lines.append(f"  mlp={f:>4.1f}  cycles={cycles:>9d}")
    print_block("\n".join(lines))
    # Stronger latency overlap (smaller factor) is monotonically faster.
    cycles = [table[f] for f in factors]
    assert cycles[0] >= cycles[1] >= cycles[2]
