"""Regenerates Figure 5: per-app speedup of every HCC configuration
relative to big.TINY/MESI."""

from repro.config.system import DTS_KINDS, HCC_KINDS
from repro.harness import fig5_speedup, format_series, geomean

from conftest import print_block


def test_fig5_speedup_over_bigtiny_mesi(benchmark, scale):
    data = benchmark.pedantic(fig5_speedup, args=(scale,), rounds=1, iterations=1)
    print_block(format_series("Figure 5: speedup vs big.TINY/MESI", data))

    for kind in HCC_KINDS:
        dts_kind = kind.replace("bt-hcc-", "bt-hcc-dts-")
        hcc_gm = geomean(series[kind] for series in data.values())
        dts_gm = geomean(series[dts_kind] for series in data.values())
        # Paper: DTS never hurts on geomean and helps substantially.
        assert dts_gm > 0.9 * hcc_gm
    best = max(
        geomean(series[k] for series in data.values()) for k in DTS_KINDS
    )
    assert best > 1.0
