"""Regenerates Table IV: DTS reduction in invalidations/flushes and the
resulting L1 hit-rate increase, per app and per HCC protocol."""

from repro.harness import format_table4, table4

from conftest import print_block


def test_table4_invalidation_flush_reduction(benchmark, scale):
    rows = benchmark.pedantic(table4, args=(scale,), rounds=1, iterations=1)
    print_block(format_table4(rows))

    # Paper: DTS cuts invalidations massively (most apps >90%) and flushes
    # on GPU-WB; hit rates improve.  At our weak-scaled inputs steals are
    # relatively more frequent than in the paper (smaller tasks-per-steal
    # ratio), so the victim-side handler flush claws back part of the
    # flush reduction — we assert the direction, not the paper's >90%.
    avg_inv_gwb = sum(r["invdec_gwb"] for r in rows) / len(rows)
    avg_fls_gwb = sum(r["flsdec_gwb"] for r in rows) / len(rows)
    assert avg_inv_gwb > 40.0
    assert avg_fls_gwb > 0.0
    improving = sum(1 for r in rows if r["hitinc_gwb"] > -0.5)
    assert improving >= len(rows) * 0.6
