"""Simulator wall-clock throughput: event-fusion fast path vs slow path.

Unlike the other benchmarks (which regenerate paper results), this one
measures the *simulator itself*: simulated cycles per second and events
per second over a small app×config mix, run twice per entry — once with
the deterministic event-fusion fast path and once with it disabled
(equivalent to ``REPRO_NO_FUSION=1``).  Each pair is differentially
checked: ``StatGroup.flatten()`` must be identical between modes, so the
benchmark doubles as a proof that fusion changes nothing.

A second section benchmarks sampled simulation (``repro.sampling``): each
entry of the sampled mix runs exact and sampled, recording the wall-clock
speedup and the estimation error of the sampled leg against the exact
truth.  ``app.check()`` runs on both legs, so the section also proves the
fast-forward path is architecturally exact.

A third section benchmarks parallel sharded execution
(``repro.engine.pdes``): each entry runs its N validation replicas once
sequentially in-process and once through ``run_sharded``, recording the
serial-over-parallel speedup.  The speedup floor is only asserted on
hosts with at least 2 CPUs — on a single core the parallel leg adds
process-spawn overhead and can only lose; its entries are still recorded
so the trajectory stays honest.

The payload is written to ``BENCH_wallclock.json`` (override with
``REPRO_BENCH_OUT``) and embeds the full host/python fingerprint
(``repro.obs.host_fingerprint``) so the perf trajectory stays attributable
when runs land from different machines.  Environment knobs:

* ``REPRO_PERF_MIX=smoke``     — run the small CI mix (seconds).
* ``REPRO_PERF_REPEATS=N``     — best-of-N wall time per mode (default 2).
* ``REPRO_PERF_MIN_SPEEDUP=X`` — assert the mix aggregate speedup >= X.
* ``REPRO_PERF_SAMPLED=0``     — skip the sampled section entirely.
* ``REPRO_PERF_MIN_SAMPLED_SPEEDUP=X`` — assert sampled speedup >= X.
* ``REPRO_PERF_MAX_SAMPLED_ERROR=PCT`` — assert max |cycles err| <= PCT.
* ``REPRO_PERF_PARALLEL=0``    — skip the parallel section entirely.
* ``REPRO_PERF_MIN_PARALLEL_SPEEDUP=X`` — assert parallel speedup >= X
  (default 1.4 on hosts with >= 2 CPUs; never asserted on 1 CPU).
* ``REPRO_PERF_BASELINE=FILE`` — compare against a previous payload and
  fail on throughput regressions beyond ``REPRO_PERF_TOLERANCE``
  (fractional, default 0.15).
"""

from __future__ import annotations

import os

from repro.harness.perf import (
    DEFAULT_MIX,
    PARALLEL_MIX,
    SAMPLED_MIX,
    SMOKE_MIX,
    SMOKE_PARALLEL_MIX,
    SMOKE_SAMPLED_MIX,
    compare_baseline,
    format_baseline_report,
    format_parallel_report,
    format_report,
    format_sampled_report,
    read_bench,
    run_mix,
    run_parallel_mix,
    run_sampled_mix,
    write_bench,
)

from conftest import print_block


def test_wallclock_throughput():
    smoke = os.environ.get("REPRO_PERF_MIX") == "smoke"
    mix = SMOKE_MIX if smoke else DEFAULT_MIX
    repeats = int(os.environ.get("REPRO_PERF_REPEATS", "2"))
    # run_entry raises AssertionError if any fused/unfused pair disagrees
    # on StatGroup.flatten(), so reaching the report proves determinism.
    payload = run_mix(list(mix), repeats=repeats)
    print_block(format_report(payload))

    if os.environ.get("REPRO_PERF_SAMPLED", "1") != "0":
        sampled_mix = SMOKE_SAMPLED_MIX if smoke else SAMPLED_MIX
        payload["sampled"] = run_sampled_mix(list(sampled_mix), repeats=1)
        print_block(format_sampled_report(payload["sampled"]))

    if os.environ.get("REPRO_PERF_PARALLEL", "1") != "0":
        parallel_mix = SMOKE_PARALLEL_MIX if smoke else PARALLEL_MIX
        payload["parallel"] = run_parallel_mix(list(parallel_mix), repeats=1)
        print_block(format_parallel_report(payload["parallel"]))

    write_bench(payload, os.environ.get("REPRO_BENCH_OUT", "BENCH_wallclock.json"))

    agg = payload["aggregate"]
    assert all(e["stats_identical"] for e in payload["entries"])
    # The fingerprint keeps cross-machine perf histories attributable.
    assert payload["host"].get("python") and payload["host"].get("node") is not None
    assert agg["events_fused"] > 0, "fast path never engaged"
    assert agg["events_per_sec"] > 0
    floor = os.environ.get("REPRO_PERF_MIN_SPEEDUP")
    if floor is not None:
        assert agg["speedup"] >= float(floor), (
            f"mix speedup {agg['speedup']:.2f}x below required {floor}x"
        )

    if "sampled" in payload:
        sagg = payload["sampled"]["aggregate"]
        sfloor = os.environ.get("REPRO_PERF_MIN_SAMPLED_SPEEDUP")
        if sfloor is not None:
            assert sagg["speedup"] >= float(sfloor), (
                f"sampled mix speedup {sagg['speedup']:.2f}x below "
                f"required {sfloor}x"
            )
        cap = os.environ.get("REPRO_PERF_MAX_SAMPLED_ERROR")
        if cap is not None:
            assert sagg["max_abs_cycles_err_pct"] <= float(cap), (
                f"sampled cycles error {sagg['max_abs_cycles_err_pct']:.2f}% "
                f"above allowed {cap}%"
            )

    if "parallel" in payload:
        pagg = payload["parallel"]["aggregate"]
        assert all(e["stats_identical"] for e in payload["parallel"]["entries"])
        assert pagg["wall_serial_s"] > 0 and pagg["wall_parallel_s"] > 0
        pfloor = os.environ.get("REPRO_PERF_MIN_PARALLEL_SPEEDUP")
        cpus = os.cpu_count() or 1
        if pfloor is None and cpus >= 2:
            pfloor = "1.4"
        if pfloor is not None and cpus >= 2:
            assert pagg["speedup"] >= float(pfloor), (
                f"parallel mix speedup {pagg['speedup']:.2f}x below "
                f"required {pfloor}x on a {cpus}-CPU host"
            )

    baseline_path = os.environ.get("REPRO_PERF_BASELINE")
    if baseline_path:
        baseline = read_bench(baseline_path)
        tolerance = float(os.environ.get("REPRO_PERF_TOLERANCE", "0.15"))
        report = compare_baseline(payload, baseline, tolerance=tolerance)
        print_block(format_baseline_report(report))
        assert report["ok"], (
            f"{len(report['regressions'])} perf regression(s) vs "
            f"{baseline_path}"
        )
