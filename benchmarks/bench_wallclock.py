"""Simulator wall-clock throughput: event-fusion fast path vs slow path.

Unlike the other benchmarks (which regenerate paper results), this one
measures the *simulator itself*: simulated cycles per second and events
per second over a small app×config mix, run twice per entry — once with
the deterministic event-fusion fast path and once with it disabled
(equivalent to ``REPRO_NO_FUSION=1``).  Each pair is differentially
checked: ``StatGroup.flatten()`` must be identical between modes, so the
benchmark doubles as a proof that fusion changes nothing.

The payload is written to ``BENCH_wallclock.json`` (override with
``REPRO_BENCH_OUT``) and embeds the full host/python fingerprint
(``repro.obs.host_fingerprint``) so the perf trajectory stays attributable
when runs land from different machines.  Environment knobs:

* ``REPRO_PERF_MIX=smoke``     — run the small CI mix (seconds).
* ``REPRO_PERF_REPEATS=N``     — best-of-N wall time per mode (default 2).
* ``REPRO_PERF_MIN_SPEEDUP=X`` — assert the mix aggregate speedup >= X.
"""

from __future__ import annotations

import os

from repro.harness.perf import (
    DEFAULT_MIX,
    SMOKE_MIX,
    format_report,
    run_mix,
    write_bench,
)

from conftest import print_block


def test_wallclock_throughput():
    mix = SMOKE_MIX if os.environ.get("REPRO_PERF_MIX") == "smoke" else DEFAULT_MIX
    repeats = int(os.environ.get("REPRO_PERF_REPEATS", "2"))
    # run_entry raises AssertionError if any fused/unfused pair disagrees
    # on StatGroup.flatten(), so reaching the report proves determinism.
    payload = run_mix(list(mix), repeats=repeats)
    print_block(format_report(payload))
    write_bench(payload, os.environ.get("REPRO_BENCH_OUT", "BENCH_wallclock.json"))

    agg = payload["aggregate"]
    assert all(e["stats_identical"] for e in payload["entries"])
    # The fingerprint keeps cross-machine perf histories attributable.
    assert payload["host"].get("python") and payload["host"].get("node") is not None
    assert agg["events_fused"] > 0, "fast path never engaged"
    assert agg["events_per_sec"] > 0
    floor = os.environ.get("REPRO_PERF_MIN_SPEEDUP")
    if floor is not None:
        assert agg["speedup"] >= float(floor), (
            f"mix speedup {agg['speedup']:.2f}x below required {floor}x"
        )
