"""Regenerates Figure 8: on-chip network traffic by message category,
normalized to big.TINY/MESI's total."""

from repro.harness import fig8_traffic, format_stacked, geomean
from repro.mem.traffic import CATEGORIES

from conftest import print_block


def test_fig8_network_traffic(benchmark, scale):
    data = benchmark.pedantic(fig8_traffic, args=(scale,), rounds=1, iterations=1)
    print_block(
        format_stacked("Figure 8: NoC traffic by category (normalized to MESI)",
                       data, CATEGORIES)
    )

    def total(kind):
        return geomean(sum(series[kind].values()) for series in data.values())

    def wb_share(kind):
        return geomean(s[kind]["wb_req"] + 1e-9 for s in data.values())

    # Paper: GPU-WT's write-through traffic dominates its profile — its
    # wb_req bytes tower over every write-back protocol's.  (At our scaled
    # inputs MESI's owner-recall coherence traffic makes its *total* the
    # largest, so we assert the category signature rather than totals.)
    assert wb_share("bt-hcc-gwt") > 2.0 * wb_share("bt-hcc-gwb")
    assert wb_share("bt-hcc-gwt") > 2.0 * wb_share("bt-mesi")
    # DTS does not help gwt's write-through traffic (paper §VI-C)...
    assert wb_share("bt-hcc-dts-gwt") > 0.5 * wb_share("bt-hcc-gwt")
    # ...and DTS reduces overall traffic for every HCC protocol.
    for proto in ("dnv", "gwt", "gwb"):
        assert total(f"bt-hcc-dts-{proto}") <= total(f"bt-hcc-{proto}") * 1.05
    # DTS-gwb lands at or below MESI's total traffic (paper: "similar").
    assert total("bt-hcc-dts-gwb") < 1.5 * total("bt-mesi")
