"""Ablations of runtime design choices beyond the paper's main matrix:

* lock-based deques (the paper's Figure 3 choice) vs Chase-Lev lock-free
  deques, on hardware coherence and on HCC.  On HCC the lock-free deque
  must issue every control access as an AMO — at the shared L2 for the
  GPU protocols — which is exactly why the paper keeps the simpler lock.
* random victim selection (the paper) vs an asymmetry-aware "big-first"
  policy that probes a big core before falling back to random.
"""

from repro.apps import make_app
from repro.config import make_config
from repro.core import WorkStealingRuntime
from repro.harness import app_params
from repro.machine import Machine

from conftest import print_block

APP = "cilk5-cs"


def run_one(kind, scale, **rt_kwargs):
    app = make_app(APP, **app_params(APP, scale))
    machine = Machine(make_config(kind, scale))
    app.setup(machine)
    rt = WorkStealingRuntime(machine, **rt_kwargs)
    cycles = rt.run(app.make_root())
    app.check()
    return cycles, rt.stats.get("steals"), machine.aggregate_l1_stats()["amos"]


def test_deque_kind_ablation(benchmark, scale):
    def collect():
        table = {}
        for kind in ("bt-mesi", "bt-hcc-gwb"):
            table[(kind, "lock")] = run_one(kind, scale, deque_kind="lock")
            table[(kind, "chase-lev")] = run_one(kind, scale, deque_kind="chase-lev")
        return table

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    lines = [f"Deque ablation on {APP} (cycles / steals / AMOs):"]
    for (kind, deque_kind), (cycles, steals, amos) in table.items():
        lines.append(f"  {kind:12s} {deque_kind:10s} {cycles:>9d} {steals:>6d} {amos:>8d}")
    print_block("\n".join(lines))

    # The lock-free deque trades the lock for mandatory AMO control
    # accesses: AMO counts rise on both machines.
    assert table[("bt-mesi", "chase-lev")][2] > table[("bt-mesi", "lock")][2] * 0.8
    # Every configuration still computed the right answer (checked inside
    # run_one); both deques complete in the same order of magnitude.
    for kind in ("bt-mesi", "bt-hcc-gwb"):
        ratio = table[(kind, "chase-lev")][0] / table[(kind, "lock")][0]
        assert 0.2 < ratio < 5.0


def test_steal_policy_ablation(benchmark, scale):
    def collect():
        return {
            policy: run_one("bt-mesi", scale, steal_policy=policy)
            for policy in ("random", "big-first")
        }

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    lines = [f"Steal-policy ablation on {APP} (cycles / steals):"]
    for policy, (cycles, steals, _amos) in table.items():
        lines.append(f"  {policy:10s} {cycles:>9d} {steals:>6d}")
    print_block("\n".join(lines))
    ratio = table["big-first"][0] / table["random"][0]
    assert 0.3 < ratio < 3.0  # same ballpark; direction is workload-dependent
