"""Ablation of the two DTS software optimizations (Sections IV-B and IV-C):

* queue-sync elision — task queues become private, so per-access
  invalidate/flush pairs disappear;
* parent-child-sync elision — ``has_stolen_child`` lets the runtime use
  plain loads/stores on the reference count and skip the wait-end
  invalidate when nothing was stolen.
"""

from repro.apps import make_app
from repro.config import make_config
from repro.core import WorkStealingRuntime
from repro.harness import app_params
from repro.machine import Machine

from conftest import print_block

APPS = ("cilk5-cs", "ligra-bfs")


def run_one(app_name, scale, **rt_kwargs):
    app = make_app(app_name, **app_params(app_name, scale))
    machine = Machine(make_config("bt-hcc-dts-gwb", scale))
    app.setup(machine)
    rt = WorkStealingRuntime(machine, **rt_kwargs)
    cycles = rt.run(app.make_root())
    app.check()
    tiny = machine.tiny_core_ids()
    agg = machine.aggregate_l1_stats(tiny)
    return cycles, agg["lines_flushed"], agg["lines_invalidated"]


def test_dts_software_optimizations_ablation(benchmark, scale):
    def collect():
        table = {}
        for app in APPS:
            table[app] = {
                "full": run_one(app, scale),
                "no-queue-elision": run_one(app, scale, dts_elide_queue_sync=False),
                "no-parent-elision": run_one(app, scale, dts_elide_parent_sync=False),
            }
        return table

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    lines = ["DTS optimization ablation (cycles / flushed lines / invalidated lines):"]
    for app, variants in table.items():
        for tag, (cycles, flushed, invalidated) in variants.items():
            lines.append(f"  {app:10s} {tag:18s} {cycles:>9d} {flushed:>8d} {invalidated:>8d}")
    print_block("\n".join(lines))

    for app, variants in table.items():
        # Disabling queue-sync elision restores per-spawn flushes.
        assert variants["no-queue-elision"][1] >= variants["full"][1]
        # Disabling parent-sync elision restores AMO/invalidate overhead.
        assert variants["no-parent-elision"][2] >= variants["full"][2] * 0.9
