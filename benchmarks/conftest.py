"""Benchmark configuration.

Benchmarks regenerate every table and figure of the paper.  By default they
run at the ``quick`` scale (16-core machine, reduced inputs) so the full
suite finishes in minutes; set ``REPRO_SCALE=paper`` for the 64-core
Table II system (the configuration EXPERIMENTS.md records), or
``REPRO_SCALE=large`` to push everything to the 256-core machine.

Simulation results are memoized per process (``repro.harness.runner``), so
the Table III sweep feeds Figures 5-8 without re-simulating.
"""

from __future__ import annotations

import pytest

from repro.harness import default_scale


@pytest.fixture(scope="session")
def scale() -> str:
    return default_scale()


def print_block(text: str) -> None:
    """Print a result table, visible under pytest's -s or on failure."""
    print()
    print(text)
