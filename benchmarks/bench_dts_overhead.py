"""Regenerates the Section VI-C DTS overhead characterization: ULI network
utilization (<5%), average ULI latency (tens of cycles), and the share of
execution time spent on DTS (<1% in the paper)."""

from repro.harness import dts_overhead, format_dts_overhead

from conftest import print_block


def test_dts_overheads(benchmark, scale):
    rows = benchmark.pedantic(dts_overhead, args=(scale,), rounds=1, iterations=1)
    print_block(format_dts_overhead(rows))

    for row in rows:
        assert row["uli_utilization_pct"] < 5.0  # paper: <5% utilization
        assert row["uli_avg_latency"] < 200.0
    # Victim-side handler time is small (paper: <1% — at a steal rate of
    # ~0.1% of tasks; our weak-scaled inputs steal 100x more often, so the
    # proportional bound is ~10%).
    low_overhead = sum(1 for r in rows if r["dts_time_pct"] < 10.0)
    assert low_overhead >= len(rows) * 0.7
