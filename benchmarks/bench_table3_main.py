"""Regenerates Table III: the paper's main results table.

For every kernel: Cilkview work/span/parallelism/IPT, speedup of O3x1/4/8
and big.TINY/MESI over the serial in-order baseline, and the speedup of
each HCC and HCC+DTS configuration relative to big.TINY/MESI.

With ``REPRO_RESULTS_DIR`` set, a second invocation replays every result
from the store; set ``REPRO_EXPECT_WARM_STORE=1`` to assert that the warm
run performed zero simulations (CI's smoke job does exactly this).
"""

import os

from repro.config.system import DTS_KINDS
from repro.harness import (
    format_table3,
    get_result_store,
    headline_claims,
    simulation_count,
    table3,
)

from conftest import print_block


def test_table3_main_results(benchmark, scale):
    expect_warm = os.environ.get("REPRO_EXPECT_WARM_STORE", "") not in ("", "0")
    store = get_result_store()
    if store is not None:
        store.reset_counters()
    sims_before = simulation_count()

    rows = benchmark.pedantic(table3, args=(scale,), rounds=1, iterations=1)
    print_block(format_table3(rows))

    if store is not None:
        print_block(store.stats_line())
    if expect_warm:
        assert store is not None, "REPRO_EXPECT_WARM_STORE needs REPRO_RESULTS_DIR"
        assert simulation_count() == sims_before, "warm run re-simulated"
        assert store.misses == 0, "warm run missed the result store"

    summary = rows[-1]

    # Shape checks against the paper's geomeans (loose: our substrate is a
    # weak-scaled Python simulator, not the authors' gem5 testbed).
    assert summary["speedup_o3x1"] > 1.0          # a big core beats serial-IO
    assert summary["speedup_o3x4"] > summary["speedup_o3x1"]
    assert summary["speedup_bt-mesi"] > 1.0       # big.TINY exploits parallelism
    # HCC costs at most modest performance vs full hardware coherence.
    for kind in ("bt-hcc-dnv", "bt-hcc-gwt", "bt-hcc-gwb"):
        assert summary[f"rel_{kind}"] > 0.6
    # DTS recovers the gap; the best DTS config beats big.TINY/MESI
    # (paper: +21% for HCC-DTS-gwb).
    best_dts = max(summary[f"rel_{kind}"] for kind in DTS_KINDS)
    assert best_dts > 1.0

    claims = headline_claims(scale)
    print_block(
        "Headline claims (paper: 7x over one big core at 64 cores, "
        "1.4x over O3x8, +21% for best HCC+DTS):\n"
        + "\n".join(f"  {k} = {v:.2f}" for k, v in claims.items())
    )
