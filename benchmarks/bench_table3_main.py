"""Regenerates Table III: the paper's main results table.

For every kernel: Cilkview work/span/parallelism/IPT, speedup of O3x1/4/8
and big.TINY/MESI over the serial in-order baseline, and the speedup of
each HCC and HCC+DTS configuration relative to big.TINY/MESI.
"""

from repro.config.system import DTS_KINDS
from repro.harness import format_table3, headline_claims, table3

from conftest import print_block


def test_table3_main_results(benchmark, scale):
    rows = benchmark.pedantic(table3, args=(scale,), rounds=1, iterations=1)
    print_block(format_table3(rows))
    summary = rows[-1]

    # Shape checks against the paper's geomeans (loose: our substrate is a
    # weak-scaled Python simulator, not the authors' gem5 testbed).
    assert summary["speedup_o3x1"] > 1.0          # a big core beats serial-IO
    assert summary["speedup_o3x4"] > summary["speedup_o3x1"]
    assert summary["speedup_bt-mesi"] > 1.0       # big.TINY exploits parallelism
    # HCC costs at most modest performance vs full hardware coherence.
    for kind in ("bt-hcc-dnv", "bt-hcc-gwt", "bt-hcc-gwb"):
        assert summary[f"rel_{kind}"] > 0.6
    # DTS recovers the gap; the best DTS config beats big.TINY/MESI
    # (paper: +21% for HCC-DTS-gwb).
    best_dts = max(summary[f"rel_{kind}"] for kind in DTS_KINDS)
    assert best_dts > 1.0

    claims = headline_claims(scale)
    print_block(
        "Headline claims (paper: 7x over one big core at 64 cores, "
        "1.4x over O3x8, +21% for best HCC+DTS):\n"
        + "\n".join(f"  {k} = {v:.2f}" for k, v in claims.items())
    )
