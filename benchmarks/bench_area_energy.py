"""Regenerates the Section V-A area-equivalence argument and the energy
comparison behind the paper's "similar energy efficiency" claim."""

from repro.analysis import area_equivalence_report, big_to_tiny_ratio
from repro.config import make_config
from repro.harness import geomean, run_experiment

from conftest import print_block


def test_area_model(benchmark):
    ratio = benchmark.pedantic(big_to_tiny_ratio, rounds=1, iterations=1)
    report = area_equivalence_report(
        make_config("o3x8", "paper"), make_config("bt-mesi", "paper")
    )
    print_block(
        f"CACTI-style area model: 64KB/4KB L1 ratio = {ratio:.2f} (paper: 14.9)\n"
        f"O3x8 vs 64-core big.TINY total L1 area ratio = {report['ratio']:.3f}"
    )
    assert abs(ratio - 14.9) < 0.01
    assert 0.8 < report["ratio"] < 1.3


def test_energy_efficiency(benchmark, scale):
    apps = ("cilk5-mt", "ligra-bfs", "ligra-cc")

    def collect():
        out = {}
        for kind in ("bt-mesi", "bt-hcc-gwb", "bt-hcc-dts-gwb"):
            out[kind] = [
                run_experiment(app, kind, scale).energy.total_pj for app in apps
            ]
        return out

    energy = benchmark.pedantic(collect, rounds=1, iterations=1)
    mesi = geomean(energy["bt-mesi"])
    dts = geomean(energy["bt-hcc-dts-gwb"])
    lines = [
        f"  {kind:16s} geomean energy = {geomean(vals):.3e} pJ"
        for kind, vals in energy.items()
    ]
    print_block("Energy comparison (paper: DTS-gwb ~ MESI):\n" + "\n".join(lines))
    # Paper: best HCC+DTS has similar energy efficiency to full MESI.
    assert 0.4 < dts / mesi < 2.0
