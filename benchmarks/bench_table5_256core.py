"""Regenerates Table V: the 256-core big.TINY system.

Uses the ``large`` machine (4 big + 252 tiny, 8x32 mesh, 32 L2 banks / MCs)
with scaled-up inputs for the paper's five selected kernels, comparing
big.TINY/MESI vs the serial baseline and GPU-WB HCC with and without DTS.
"""

from repro.harness import TABLE5_APPS, format_table5, table5

from conftest import print_block


def test_table5_larger_system(benchmark):
    rows = benchmark.pedantic(
        table5, kwargs=dict(scale="large", apps=TABLE5_APPS), rounds=1, iterations=1
    )
    print_block(format_table5(rows))
    for row in rows:
        assert row["mesi_vs_serial"] > 1.0
        # Paper: DTS improves on plain HCC-gwb on the larger machine.
        assert row["dts_gwb_vs_mesi"] > 0.5 * row["gwb_vs_mesi"]
    better = sum(1 for r in rows if r["dts_gwb_vs_mesi"] >= r["gwb_vs_mesi"])
    assert better >= 3  # DTS helps on most kernels (paper: all five)
