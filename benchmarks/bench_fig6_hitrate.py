"""Regenerates Figure 6: tiny-core L1 data cache hit rate per app/config."""

from repro.harness import fig6_hitrate, format_series, geomean

from conftest import print_block


def test_fig6_l1_hit_rate(benchmark, scale):
    data = benchmark.pedantic(fig6_hitrate, args=(scale,), rounds=1, iterations=1)
    print_block(format_series("Figure 6: tiny-core L1D hit rate", data))

    mesi = geomean(series["bt-mesi"] for series in data.values())
    gwt = geomean(series["bt-hcc-gwt"] for series in data.values())
    gwt_dts = geomean(series["bt-hcc-dts-gwt"] for series in data.values())
    # Paper: GPU-WT has the worst hit rate (no write allocation + full
    # invalidations); DTS recovers hit rate by eliminating invalidations.
    assert gwt <= mesi + 0.02
    assert gwt_dts >= gwt - 0.02
    for series in data.values():
        for rate in series.values():
            assert 0.0 <= rate <= 1.0
